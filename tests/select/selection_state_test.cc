// Differential coverage for the persistent SelectionState (warm-started
// CELF): across simulated doubling runs, a selection that warm-syncs its
// initial gains from the collection's incrementally maintained
// membership counts must be bit-identical — seeds, coverage, trace
// arrays — to the stateless CELF path and to the SelectGreedy oracle.
// Also pins the MemberNonzero list (the warm path's heap/histogram
// iteration domain) against the counts it summarizes, and the state's
// rebind behavior when the bound collection changes.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "rrset/rr_collection.h"
#include "select/greedy.h"
#include "select/selection_state.h"
#include "support/random.h"

namespace opim {
namespace {

struct Stream {
  std::vector<NodeId> pool;                         // flat member stream
  std::vector<std::pair<uint32_t, uint64_t>> sets;  // (size, cost)
  std::vector<uint64_t> offsets;                    // prefix sums of sizes
};

/// A seeded random RR stream over n nodes; set lengths in [1, max_len].
Stream MakeStream(uint32_t n, uint32_t num_sets, uint32_t max_len,
                  uint64_t seed) {
  Rng rng(seed);
  Stream s;
  s.offsets.push_back(0);
  std::vector<NodeId> members;
  for (uint32_t i = 0; i < num_sets; ++i) {
    members.clear();
    const uint32_t len = 1 + rng.UniformBelow(max_len);
    for (uint32_t j = 0; j < len; ++j) {
      members.push_back(static_cast<NodeId>(rng.UniformBelow(n)));
    }
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
    s.pool.insert(s.pool.end(), members.begin(), members.end());
    s.sets.emplace_back(static_cast<uint32_t>(members.size()),
                        uint64_t{members.size()});
    s.offsets.push_back(s.offsets.back() + members.size());
  }
  return s;
}

/// Appends stream sets [from, to) to `c` as one compressed batch — the
/// ingest shape the engine's doubling loop uses.
void AddSlice(RRCollection* c, const Stream& s, size_t from, size_t to) {
  std::vector<RRBatch> shards(1);
  shards[0].pool.assign(s.pool.begin() + s.offsets[from],
                        s.pool.begin() + s.offsets[to]);
  shards[0].sets.assign(s.sets.begin() + from, s.sets.begin() + to);
  c->AddBatch(std::move(shards));
}

void ExpectSameSelection(const GreedyResult& a, const GreedyResult& b) {
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_EQ(a.coverage, b.coverage);
  EXPECT_EQ(a.coverage_at, b.coverage_at);
  EXPECT_EQ(a.topk_marginal_at, b.topk_marginal_at);
}

TEST(SelectionStateTest, WarmSelectionsMatchColdAcrossDoublings) {
  // Two independent replays of the same stream: one keeps a
  // SelectionState across the doublings (first sync cold, the rest warm
  // O(n) copies), the other re-derives gains from scratch every time.
  // Every doubling's output must match bit for bit, in both trace modes.
  for (uint64_t seed : {1u, 9u, 42u}) {
    const uint32_t n = 400;
    const uint32_t k = 12;
    const Stream s = MakeStream(n, /*num_sets=*/2048, /*max_len=*/5, seed);
    const size_t targets[] = {128, 256, 512, 1024, 2048};

    RRCollection warm_c(n);
    RRCollection cold_c(n);
    SelectionState state;
    CelfOptions warm_opts;
    warm_opts.state = &state;
    size_t done = 0;
    for (const size_t target : targets) {
      AddSlice(&warm_c, s, done, target);
      AddSlice(&cold_c, s, done, target);
      done = target;
      for (const bool with_trace : {false, true}) {
        const GreedyResult warm =
            SelectGreedyCelf(warm_c, k, with_trace, warm_opts);
        const GreedyResult cold = SelectGreedyCelf(cold_c, k, with_trace);
        ExpectSameSelection(cold, warm);
        if (with_trace) {
          const GreedyResult oracle = SelectGreedy(cold_c, k, true);
          ExpectSameSelection(oracle, warm);
        }
      }
      EXPECT_TRUE(state.WarmFor(warm_c));
      EXPECT_EQ(state.sets_accounted(), warm_c.num_sets());
    }
  }
}

TEST(SelectionStateTest, SerialAppendsBetweenSyncsStayExact) {
  // Serial AddSet appends leave the membership counts behind a lazy
  // watermark; the next warm sync must fold exactly the pending delta
  // (re-decoding only the new sets) and still match the cold path.
  const uint32_t n = 120;
  const uint32_t k = 8;
  const Stream s = MakeStream(n, 600, 4, 7);
  RRCollection warm_c(n);
  RRCollection cold_c(n);
  SelectionState state;
  CelfOptions warm_opts;
  warm_opts.state = &state;

  AddSlice(&warm_c, s, 0, 200);
  AddSlice(&cold_c, s, 0, 200);
  ExpectSameSelection(SelectGreedyCelf(cold_c, k, true),
                      SelectGreedyCelf(warm_c, k, true, warm_opts));

  // One-set-at-a-time appends (the non-batched ingest path).
  for (size_t i = 200; i < 260; ++i) {
    std::vector<NodeId> members(s.pool.begin() + s.offsets[i],
                                s.pool.begin() + s.offsets[i + 1]);
    warm_c.AddSet(members, s.sets[i].second);
    cold_c.AddSet(members, s.sets[i].second);
  }
  ExpectSameSelection(SelectGreedyCelf(cold_c, k, true),
                      SelectGreedyCelf(warm_c, k, true, warm_opts));

  AddSlice(&warm_c, s, 260, 600);
  AddSlice(&cold_c, s, 260, 600);
  ExpectSameSelection(SelectGreedyCelf(cold_c, k, true),
                      SelectGreedyCelf(warm_c, k, true, warm_opts));
}

TEST(SelectionStateTest, MemberNonzeroAgreesWithCounts) {
  // The warm path's iteration domain: every node with a positive count,
  // exactly once, and nothing else — across batch ingest, serial
  // appends, and repeated folds.
  const uint32_t n = 300;
  const Stream s = MakeStream(n, 900, 3, 13);
  RRCollection c(n);
  size_t done = 0;
  for (const size_t target : {150u, 300u, 900u}) {
    AddSlice(&c, s, done, target);
    done = target;
    const std::span<const uint64_t> counts = c.MemberCounts();
    const std::span<const NodeId> nonzero = c.MemberNonzero();
    std::vector<NodeId> sorted(nonzero.begin(), nonzero.end());
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end())
        << "duplicate node in MemberNonzero";
    std::vector<NodeId> expected;
    for (NodeId v = 0; v < n; ++v) {
      if (counts[v] > 0) expected.push_back(v);
    }
    EXPECT_EQ(expected, sorted);
  }
}

TEST(SelectionStateTest, RebindsToADifferentCollection) {
  // A state synced against one collection must treat another as a cold
  // rebuild (e.g. after --resume replaced the pools) and still produce
  // the exact stateless output, including when the new pool is smaller
  // than the covered-bitset arena the state already grew.
  const uint32_t n = 200;
  const uint32_t k = 6;
  const Stream big = MakeStream(n, 1000, 4, 3);
  const Stream small = MakeStream(n, 300, 4, 4);

  RRCollection big_c(n);
  AddSlice(&big_c, big, 0, 1000);
  RRCollection small_c(n);
  AddSlice(&small_c, small, 0, 300);

  SelectionState state;
  CelfOptions opts;
  opts.state = &state;
  ExpectSameSelection(SelectGreedyCelf(big_c, k, true),
                      SelectGreedyCelf(big_c, k, true, opts));
  EXPECT_TRUE(state.WarmFor(big_c));
  EXPECT_FALSE(state.WarmFor(small_c));

  ExpectSameSelection(SelectGreedyCelf(small_c, k, true),
                      SelectGreedyCelf(small_c, k, true, opts));
  EXPECT_TRUE(state.WarmFor(small_c));
  EXPECT_FALSE(state.WarmFor(big_c));

  state.Invalidate();
  EXPECT_FALSE(state.WarmFor(small_c));
  EXPECT_EQ(state.sets_accounted(), 0u);
  ExpectSameSelection(SelectGreedyCelf(small_c, k, true),
                      SelectGreedyCelf(small_c, k, true, opts));
}

}  // namespace
}  // namespace opim
