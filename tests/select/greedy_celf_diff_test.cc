// Differential test pinning SelectGreedyCelf to the reference oracle
// SelectGreedy: identical seeds, coverage, and (in trace mode) identical
// coverage_at / topk_marginal_at arrays across randomized collections
// that vary n, θ, k, saturation, and tie density. Also cross-checks the
// partial-copy TopKSum inside SelectGreedy's trace against a brute-force
// full sort, so the nonzero-only copy provably changes no trace value.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "rrset/rr_collection.h"
#include "select/greedy.h"
#include "support/random.h"

namespace opim {
namespace {

struct DiffCase {
  uint32_t n;
  uint32_t num_sets;
  uint32_t max_set_len;  // small lengths over small n => many gain ties
  uint32_t k;
  uint64_t seed;
};

RRCollection MakeRandomCollection(const DiffCase& c) {
  Rng rng(c.seed);
  RRCollection rr(c.n);
  std::vector<NodeId> s;
  for (uint32_t i = 0; i < c.num_sets; ++i) {
    s.clear();
    const uint32_t len = 1 + rng.UniformBelow(c.max_set_len);
    for (uint32_t j = 0; j < len; ++j) {
      s.push_back(static_cast<NodeId>(rng.UniformBelow(c.n)));
    }
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
    rr.AddSet(s, len);
  }
  return rr;
}

/// Brute-force Σ of the k largest marginals: full copy + full sort.
uint64_t BruteTopKSum(const std::vector<uint64_t>& counts, uint32_t k) {
  std::vector<uint64_t> sorted = counts;
  std::sort(sorted.begin(), sorted.end(), std::greater<uint64_t>());
  uint64_t total = 0;
  for (uint32_t i = 0; i < k && i < sorted.size(); ++i) total += sorted[i];
  return total;
}

/// Recomputes the greedy trace from scratch with brute-force helpers,
/// given the (already verified identical) seed sequence.
void ExpectTraceMatchesBruteForce(const RRCollection& rr, uint32_t k,
                                  const GreedyResult& r) {
  const uint32_t n = rr.num_nodes();
  std::vector<uint64_t> counts(n, 0);
  for (NodeId v = 0; v < n; ++v) counts[v] = rr.CoveringCount(v);
  std::vector<char> covered(rr.num_sets(), 0);

  ASSERT_EQ(r.seeds.size(), static_cast<size_t>(k));  // k pre-clamped
  ASSERT_EQ(r.coverage_at.size(), static_cast<size_t>(k) + 1);
  ASSERT_EQ(r.topk_marginal_at.size(), static_cast<size_t>(k) + 1);
  // Replaying filler seeds past saturation is harmless (zero marginals),
  // so every prefix 0..k checks against the same recurrence.
  uint64_t coverage = 0;
  for (uint32_t i = 0; i < k; ++i) {
    EXPECT_EQ(r.coverage_at[i], coverage) << "prefix " << i;
    EXPECT_EQ(r.topk_marginal_at[i], BruteTopKSum(counts, k))
        << "prefix " << i;
    const NodeId s = r.seeds[i];
    coverage += counts[s];
    rr.ForEachCovering(s, [&](RRId id) {
      if (covered[id]) return;
      covered[id] = 1;
      rr.ForEachMember(id, [&](NodeId w) { --counts[w]; });
    });
  }
  EXPECT_EQ(r.coverage_at[k], coverage);
  EXPECT_EQ(r.coverage_at[k], r.coverage);
  EXPECT_EQ(r.topk_marginal_at[k], BruteTopKSum(counts, k));
}

// n, sets, max_len, k, seed — spanning dense ties (tiny n, many sets),
// saturation (k near or above what coverage supports), k > n, single
// set, and larger sparse instances.
const DiffCase kCases[] = {
    {8, 40, 3, 3, 1},      {8, 40, 3, 8, 2},     {12, 5, 2, 10, 3},
    {30, 200, 4, 8, 4},    {30, 200, 4, 30, 5},  {50, 20, 2, 15, 6},
    {100, 800, 6, 12, 7},  {100, 800, 6, 50, 8}, {3, 100, 3, 3, 9},
    {200, 1500, 5, 25, 10}, {16, 64, 2, 16, 11}, {64, 10, 4, 40, 12},
};

TEST(GreedyCelfDiffTest, NoTraceMatchesOracle) {
  for (const DiffCase& c : kCases) {
    RRCollection rr = MakeRandomCollection(c);
    GreedyResult ref = SelectGreedy(rr, c.k);
    GreedyResult celf = SelectGreedyCelf(rr, c.k);
    EXPECT_EQ(ref.seeds, celf.seeds) << "seed " << c.seed;
    EXPECT_EQ(ref.coverage, celf.coverage) << "seed " << c.seed;
    EXPECT_TRUE(celf.coverage_at.empty());
    EXPECT_TRUE(celf.topk_marginal_at.empty());
  }
}

TEST(GreedyCelfDiffTest, TraceMatchesOracleExactly) {
  for (const DiffCase& c : kCases) {
    RRCollection rr = MakeRandomCollection(c);
    GreedyResult ref = SelectGreedy(rr, c.k, /*with_trace=*/true);
    GreedyResult celf = SelectGreedyCelf(rr, c.k, /*with_trace=*/true);
    EXPECT_EQ(ref.seeds, celf.seeds) << "seed " << c.seed;
    EXPECT_EQ(ref.coverage, celf.coverage) << "seed " << c.seed;
    EXPECT_EQ(ref.coverage_at, celf.coverage_at) << "seed " << c.seed;
    EXPECT_EQ(ref.topk_marginal_at, celf.topk_marginal_at)
        << "seed " << c.seed;
  }
}

TEST(GreedyCelfDiffTest, TraceMatchesBruteForceRecomputation) {
  for (const DiffCase& c : kCases) {
    RRCollection rr = MakeRandomCollection(c);
    const uint32_t k = std::min(c.k, c.n);
    GreedyResult ref = SelectGreedy(rr, k, /*with_trace=*/true);
    ExpectTraceMatchesBruteForce(rr, k, ref);
    GreedyResult celf = SelectGreedyCelf(rr, k, /*with_trace=*/true);
    ExpectTraceMatchesBruteForce(rr, k, celf);
  }
}

TEST(GreedyCelfDiffTest, TraceModeDoesNotPerturbSeeds) {
  // with_trace must be observe-only: same seeds/coverage as without.
  for (const DiffCase& c : kCases) {
    RRCollection rr = MakeRandomCollection(c);
    GreedyResult plain = SelectGreedyCelf(rr, c.k);
    GreedyResult traced = SelectGreedyCelf(rr, c.k, /*with_trace=*/true);
    EXPECT_EQ(plain.seeds, traced.seeds) << "seed " << c.seed;
    EXPECT_EQ(plain.coverage, traced.coverage) << "seed " << c.seed;
  }
}

TEST(GreedyCelfDiffTest, AllTiedGainsPickAscendingIds) {
  // Every node covers exactly one distinct set: total tie on every pick.
  const uint32_t n = 10;
  RRCollection rr(n);
  for (NodeId v = 0; v < n; ++v) rr.AddSet(std::vector<NodeId>{v}, 1);
  GreedyResult ref = SelectGreedy(rr, 6, /*with_trace=*/true);
  GreedyResult celf = SelectGreedyCelf(rr, 6, /*with_trace=*/true);
  EXPECT_EQ(ref.seeds, celf.seeds);
  EXPECT_EQ((std::vector<NodeId>{0, 1, 2, 3, 4, 5}), celf.seeds);
  EXPECT_EQ(ref.topk_marginal_at, celf.topk_marginal_at);
}

TEST(GreedyCelfDiffTest, SaturationPadsTraceIdentically) {
  RRCollection rr(6);
  rr.AddSet(std::vector<NodeId>{2}, 1);
  rr.AddSet(std::vector<NodeId>{2, 3}, 1);
  const uint32_t k = 5;
  GreedyResult ref = SelectGreedy(rr, k, /*with_trace=*/true);
  GreedyResult celf = SelectGreedyCelf(rr, k, /*with_trace=*/true);
  EXPECT_EQ(ref.seeds, celf.seeds);
  EXPECT_EQ(ref.coverage_at, celf.coverage_at);
  EXPECT_EQ(ref.topk_marginal_at, celf.topk_marginal_at);
  ASSERT_EQ(celf.coverage_at.size(), static_cast<size_t>(k) + 1);
  EXPECT_EQ(celf.coverage_at.back(), 2u);
  EXPECT_EQ(celf.topk_marginal_at.back(), 0u);
}

}  // namespace
}  // namespace opim
