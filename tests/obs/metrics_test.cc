#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace opim {
namespace {

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(CounterTest, AddDeltaAndReset) {
  Counter counter;
  counter.Add(5);
  counter.Add(7);
  EXPECT_EQ(counter.Value(), 12u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(GaugeTest, SetAddValue) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0);
  gauge.Set(42);
  EXPECT_EQ(gauge.Value(), 42);
  gauge.Add(-50);
  EXPECT_EQ(gauge.Value(), -8);
  gauge.Reset();
  EXPECT_EQ(gauge.Value(), 0);
}

TEST(HistogramTest, BucketBoundaries) {
  // Bucket b holds values with bit_width b: bucket 0 = {0},
  // bucket b = [2^(b-1), 2^b - 1].
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  EXPECT_EQ(Histogram::BucketIndex(~uint64_t{0}), 64u);

  for (unsigned b = 0; b < Histogram::kNumBuckets; ++b) {
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketLower(b)), b) << b;
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketUpper(b)), b) << b;
  }
  EXPECT_EQ(Histogram::BucketLower(0), 0u);
  EXPECT_EQ(Histogram::BucketUpper(0), 0u);
  EXPECT_EQ(Histogram::BucketLower(1), 1u);
  EXPECT_EQ(Histogram::BucketUpper(1), 1u);
  EXPECT_EQ(Histogram::BucketLower(10), 512u);
  EXPECT_EQ(Histogram::BucketUpper(10), 1023u);
}

TEST(HistogramTest, RecordCountsAndSum) {
  Histogram hist;
  hist.Record(0);
  hist.Record(1);
  hist.Record(5);
  hist.Record(6);
  hist.Record(1000);
  EXPECT_EQ(hist.Count(), 5u);
  EXPECT_EQ(hist.Sum(), 1012u);
  EXPECT_EQ(hist.BucketCount(0), 1u);  // {0}
  EXPECT_EQ(hist.BucketCount(1), 1u);  // {1}
  EXPECT_EQ(hist.BucketCount(3), 2u);  // [4, 7]
  EXPECT_EQ(hist.BucketCount(10), 1u);  // [512, 1023]
}

TEST(RegistryTest, SameNameSamePointer) {
  MetricsRegistry registry;
  Counter* a = registry.FindOrCreateCounter("x");
  Counter* b = registry.FindOrCreateCounter("x");
  Counter* c = registry.FindOrCreateCounter("y");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(registry.FindOrCreateHistogram("x"),
            registry.FindOrCreateHistogram("x"));
  EXPECT_EQ(registry.FindOrCreateGauge("x"), registry.FindOrCreateGauge("x"));
}

TEST(RegistryTest, SnapshotIsolation) {
  MetricsRegistry registry;
  Counter* counter = registry.FindOrCreateCounter("c");
  counter->Add(3);
  MetricsSnapshot snap = registry.Snapshot();
  counter->Add(100);  // must not affect the captured snapshot

  const CounterSample* sample = snap.FindCounter("c");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->value, 3u);
  EXPECT_EQ(snap.FindCounter("missing"), nullptr);

  MetricsSnapshot snap2 = registry.Snapshot();
  EXPECT_EQ(snap2.FindCounter("c")->value, 103u);
}

TEST(RegistryTest, SnapshotSortedAndComplete) {
  MetricsRegistry registry;
  registry.FindOrCreateCounter("b")->Add(2);
  registry.FindOrCreateCounter("a")->Add(1);
  registry.FindOrCreateGauge("g")->Set(-5);
  registry.FindOrCreateHistogram("h")->Record(9);
  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "a");
  EXPECT_EQ(snap.counters[1].name, "b");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, -5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
  EXPECT_EQ(snap.histograms[0].sum, 9u);
  ASSERT_EQ(snap.histograms[0].buckets.size(), 1u);
  EXPECT_EQ(snap.histograms[0].buckets[0].lower, 8u);
  EXPECT_EQ(snap.histograms[0].buckets[0].upper, 15u);
}

TEST(RegistryTest, NullRegistryIsSink) {
  MetricsRegistry& null = MetricsRegistry::Null();
  EXPECT_FALSE(null.enabled());
  Counter* a = null.FindOrCreateCounter("anything");
  Counter* b = null.FindOrCreateCounter("else");
  EXPECT_EQ(a, b);  // shared sink
  a->Add(17);
  MetricsSnapshot snap = null.Snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

TEST(RegistryTest, ResetValuesKeepsPointers) {
  MetricsRegistry registry;
  Counter* counter = registry.FindOrCreateCounter("c");
  Histogram* hist = registry.FindOrCreateHistogram("h");
  counter->Add(10);
  hist->Record(4);
  registry.ResetValues();
  EXPECT_EQ(counter->Value(), 0u);
  EXPECT_EQ(hist->Count(), 0u);
  EXPECT_EQ(registry.FindOrCreateCounter("c"), counter);
  counter->Add(2);
  EXPECT_EQ(registry.Snapshot().FindCounter("c")->value, 2u);
}

TEST(HistogramSampleTest, MeanAndApproxPercentile) {
  Histogram hist;
  for (uint64_t v = 0; v < 100; ++v) hist.Record(v);
  MetricsRegistry registry;
  // Build a sample via a registry snapshot for realism.
  Histogram* h = registry.FindOrCreateHistogram("h");
  for (uint64_t v = 0; v < 100; ++v) h->Record(v);
  MetricsSnapshot snap = registry.Snapshot();
  const HistogramSample* sample = snap.FindHistogram("h");
  ASSERT_NE(sample, nullptr);
  EXPECT_DOUBLE_EQ(sample->Mean(), 49.5);
  // p50 of 0..99 lands in bucket [32, 63]; p100 in [64, 127].
  EXPECT_EQ(sample->ApproxPercentile(0.5), 63u);
  EXPECT_EQ(sample->ApproxPercentile(1.0), 127u);
  EXPECT_EQ(sample->ApproxPercentile(0.0), 0u);
}

TEST(SnapshotTest, ToJsonContainsMetrics) {
  MetricsRegistry registry;
  registry.FindOrCreateCounter("my.counter")->Add(7);
  registry.FindOrCreateHistogram("my.hist")->Record(100);
  std::string json = registry.Snapshot().ToJson();
  EXPECT_NE(json.find("\"my.counter\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"my.hist\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"histograms\""), std::string::npos) << json;
}

}  // namespace
}  // namespace opim
