// Tests for the live progress heartbeat (obs/progress.h): line format,
// periodic emission, guardrail columns, and Stop() idempotency.

#include "obs/progress.h"

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include "support/run_control.h"

namespace opim {
namespace {

/// Heartbeats in tests write to /dev/null so test output stays clean;
/// FormatLine is checked directly instead.
class DevNullFd {
 public:
  DevNullFd() : fd_(open("/dev/null", O_WRONLY)) {}
  ~DevNullFd() {
    if (fd_ >= 0) close(fd_);
  }
  int fd() const { return fd_; }

 private:
  int fd_;
};

TEST(ProgressHeartbeatTest, FormatLineHasCoreColumns) {
  DevNullFd devnull;
  ASSERT_GE(devnull.fd(), 0);
  ProgressHeartbeat::Options options;
  options.interval_seconds = 60.0;  // no periodic line during the test
  options.fd = devnull.fd();
  ProgressHeartbeat hb(nullptr, options);
  char buf[256];
  const size_t len = hb.FormatLine(buf, sizeof(buf));
  ASSERT_GT(len, 0u);
  const std::string line(buf, len);
  EXPECT_NE(line.find("opim: progress t="), std::string::npos) << line;
  EXPECT_NE(line.find(" iter="), std::string::npos) << line;
  EXPECT_NE(line.find(" rr_sets="), std::string::npos) << line;
  // No RunControl bound: no guardrail columns.
  EXPECT_EQ(line.find("peak_rr_mb"), std::string::npos) << line;
  EXPECT_EQ(line.back(), '\n');
  hb.Stop();
}

TEST(ProgressHeartbeatTest, FormatLineIncludesGuardrailColumns) {
  DevNullFd devnull;
  ASSERT_GE(devnull.fd(), 0);
  RunControl ctl;
  ctl.SetDeadlineAfterMillis(3600 * 1000);
  ctl.Poll(2 * 1024 * 1024);  // records the peak footprint
  ProgressHeartbeat::Options options;
  options.interval_seconds = 60.0;
  options.fd = devnull.fd();
  ProgressHeartbeat hb(&ctl, options);
  char buf[256];
  const size_t len = hb.FormatLine(buf, sizeof(buf));
  const std::string line(buf, len);
  EXPECT_NE(line.find(" peak_rr_mb=2.0"), std::string::npos) << line;
  EXPECT_NE(line.find(" deadline_slack_s="), std::string::npos) << line;
  EXPECT_EQ(line.find(" stopping="), std::string::npos) << line;
  hb.Stop();
}

TEST(ProgressHeartbeatTest, FormatLineShowsStopReason) {
  DevNullFd devnull;
  ASSERT_GE(devnull.fd(), 0);
  RunControl ctl;
  ctl.RequestCancel();
  ProgressHeartbeat::Options options;
  options.interval_seconds = 60.0;
  options.fd = devnull.fd();
  ProgressHeartbeat hb(&ctl, options);
  char buf[256];
  const size_t len = hb.FormatLine(buf, sizeof(buf));
  const std::string line(buf, len);
  EXPECT_NE(line.find(" stopping="), std::string::npos) << line;
  hb.Stop();
}

TEST(ProgressHeartbeatTest, WritesPeriodicLines) {
  DevNullFd devnull;
  ASSERT_GE(devnull.fd(), 0);
  ProgressHeartbeat::Options options;
  options.interval_seconds = 0.01;
  options.fd = devnull.fd();
  ProgressHeartbeat hb(nullptr, options);
  // Wait until at least two periodic lines land (bounded spin, not a
  // fixed sleep, so the test is slow-machine tolerant).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (hb.lines_written() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(hb.lines_written(), 2u);
  hb.Stop();
}

TEST(ProgressHeartbeatTest, StopIsIdempotentAndEmitsFinalLine) {
  DevNullFd devnull;
  ASSERT_GE(devnull.fd(), 0);
  ProgressHeartbeat::Options options;
  options.interval_seconds = 60.0;
  options.fd = devnull.fd();
  ProgressHeartbeat hb(nullptr, options);
  hb.Stop();
  const uint64_t after_first = hb.lines_written();
  EXPECT_GE(after_first, 1u);  // the final status line
  hb.Stop();
  hb.Stop();
  EXPECT_EQ(hb.lines_written(), after_first);
  // Destructor runs after Stop(): must also be a no-op.
}

TEST(ProgressHeartbeatTest, TruncatesToSmallBuffer) {
  DevNullFd devnull;
  ASSERT_GE(devnull.fd(), 0);
  ProgressHeartbeat::Options options;
  options.interval_seconds = 60.0;
  options.fd = devnull.fd();
  ProgressHeartbeat hb(nullptr, options);
  char tiny[8];
  std::memset(tiny, 'Z', sizeof(tiny));
  const size_t len = hb.FormatLine(tiny, sizeof(tiny));
  EXPECT_LT(len, sizeof(tiny));
  EXPECT_EQ(tiny[len], '\0');
  hb.Stop();
}

}  // namespace
}  // namespace opim
