// Tests for the checked JSON reader (obs/json_reader.h) and the schema
// validators behind tools/report_lint (obs/report_lint.h).

#include "obs/json_reader.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/report_lint.h"

namespace opim {
namespace {

JsonValue MustParse(const std::string& text) {
  Result<JsonValue> result = ParseJson(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).ValueOrDie();
}

std::string MustFail(const std::string& text) {
  Result<JsonValue> result = ParseJson(text);
  EXPECT_FALSE(result.ok()) << "unexpectedly parsed: " << text;
  return result.ok() ? std::string() : result.status().ToString();
}

TEST(JsonReaderTest, ParsesScalars) {
  EXPECT_TRUE(MustParse("null").is_null());
  EXPECT_TRUE(MustParse("true").AsBool());
  EXPECT_FALSE(MustParse("false").AsBool());
  EXPECT_DOUBLE_EQ(MustParse("42").AsNumber(), 42.0);
  EXPECT_DOUBLE_EQ(MustParse("-3.25e2").AsNumber(), -325.0);
  EXPECT_EQ(MustParse("\"hi\"").AsString(), "hi");
}

TEST(JsonReaderTest, ParsesNestedContainers) {
  const JsonValue doc =
      MustParse(R"({"a": [1, 2, {"b": true}], "c": "x", "d": null})");
  ASSERT_TRUE(doc.is_object());
  const auto& members = doc.AsObject();
  ASSERT_EQ(members.size(), 3u);
  // Document order is preserved, not sorted.
  EXPECT_EQ(members[0].first, "a");
  EXPECT_EQ(members[1].first, "c");
  EXPECT_EQ(members[2].first, "d");
  const JsonValue* a = doc.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->AsArray().size(), 3u);
  EXPECT_TRUE(a->AsArray()[2].Find("b")->AsBool());
  EXPECT_EQ(doc.Find("missing"), nullptr);
}

TEST(JsonReaderTest, DecodesStringEscapes) {
  EXPECT_EQ(MustParse(R"("a\"b\\c\/d\n\t")").AsString(), "a\"b\\c/d\n\t");
  // \u0041 = 'A'; \u00e9 = é (2-byte UTF-8).
  EXPECT_EQ(MustParse(R"("\u0041\u00e9")").AsString(), "A\xc3\xa9");
  // Surrogate pair: U+1F600 (4-byte UTF-8).
  EXPECT_EQ(MustParse(R"("\ud83d\ude00")").AsString(), "\xf0\x9f\x98\x80");
}

TEST(JsonReaderTest, RejectsMalformedInput) {
  EXPECT_NE(MustFail("{").find("expected object key"), std::string::npos);
  MustFail("[1, 2,]");
  MustFail("{\"a\" 1}");
  MustFail("tru");
  MustFail("\"unterminated");
  MustFail("\"bad \\q escape\"");
  MustFail("\"\\ud83d\"");        // unpaired high surrogate
  MustFail("\"ctrl \x01 char\"");
  MustFail("01");                 // leading zero
  MustFail("1.");                 // missing fraction digits
  MustFail("1e");                 // missing exponent digits
  MustFail("{} extra");           // trailing characters
  MustFail("");                   // empty document
}

TEST(JsonReaderTest, ErrorsCarryByteOffsets) {
  // The bad token starts at byte 7.
  const std::string msg = MustFail(R"({"a": [x]})");
  EXPECT_NE(msg.find("byte 7"), std::string::npos) << msg;
}

TEST(JsonReaderTest, RejectsDuplicateKeys) {
  const std::string msg = MustFail(R"({"a": 1, "a": 2})");
  EXPECT_NE(msg.find("duplicate object key"), std::string::npos) << msg;
}

TEST(JsonReaderTest, EnforcesDepthLimit) {
  std::string deep;
  for (int i = 0; i <= kJsonMaxDepth + 1; ++i) deep += '[';
  for (int i = 0; i <= kJsonMaxDepth + 1; ++i) deep += ']';
  const std::string msg = MustFail(deep);
  EXPECT_NE(msg.find("nesting deeper"), std::string::npos) << msg;
  // One level below the limit is fine.
  std::string ok;
  for (int i = 0; i < kJsonMaxDepth; ++i) ok += '[';
  for (int i = 0; i < kJsonMaxDepth; ++i) ok += ']';
  EXPECT_TRUE(ParseJson(ok).ok());
}

TEST(JsonReaderTest, ParseJsonFileReportsMissingFile) {
  Result<JsonValue> result =
      ParseJsonFile("/nonexistent/opim_json_reader_test.json");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError)
      << result.status().ToString();
}

// --- report_lint validators ---

constexpr char kGoodReport[] = R"({
  "schema": "opim.run_report.v1",
  "info": {"algo": "opim-c", "dataset": "toy"},
  "results": {"coverage": 0.5, "seeds": 10},
  "iterations": [
    {"iteration": 1, "alpha": 0.5},
    {"iteration": 2, "alpha": 0.75}
  ],
  "metrics": {
    "counters": {"opim.opimc.iterations": 2},
    "gauges": {},
    "histograms": {}
  }
})";

TEST(ReportLintTest, AcceptsWellFormedRunReport) {
  const std::vector<std::string> v = LintRunReportJson(MustParse(kGoodReport));
  EXPECT_TRUE(v.empty()) << "first violation: " << v.front();
}

TEST(ReportLintTest, FlagsUnknownRunReportSchema) {
  std::string doc = kGoodReport;
  const size_t at = doc.find("opim.run_report.v1");
  ASSERT_NE(at, std::string::npos);
  doc.replace(at, 18, "opim.run_report.v9");
  const std::vector<std::string> v = LintRunReportJson(MustParse(doc));
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v.front().find("unknown schema version"), std::string::npos);
}

TEST(ReportLintTest, FlagsNegativeCounterAndRaggedIterations) {
  const JsonValue doc = MustParse(R"({
    "schema": "opim.run_report.v1",
    "info": {},
    "results": {},
    "iterations": [{"iteration": 1, "alpha": 0.5}, {"iteration": 2}],
    "metrics": {"counters": {"bad": -1}, "gauges": {}, "histograms": {}}
  })");
  const std::vector<std::string> v = LintRunReportJson(doc);
  ASSERT_EQ(v.size(), 2u) << v.front();
  EXPECT_NE(v[0].find("different column count"), std::string::npos);
  EXPECT_NE(v[1].find("metrics.counters.bad"), std::string::npos);
}

TEST(ReportLintTest, FlagsMissingRunReportSections) {
  const std::vector<std::string> v = LintRunReportJson(MustParse("{}"));
  // schema + info + results + iterations + metrics all missing.
  EXPECT_EQ(v.size(), 5u);
}

std::string TraceDoc(const std::string& events) {
  return std::string("{\"schema\": \"opim.trace.v1\", \"traceEvents\": [") +
         events + "]}";
}

constexpr char kMeta[] =
    R"({"name": "thread_name", "ph": "M", "pid": 1, "tid": 1,
        "args": {"name": "opim-thread-1"}})";

TEST(ReportLintTest, AcceptsWellFormedTrace) {
  const JsonValue doc = MustParse(TraceDoc(
      std::string(kMeta) + R"(,
      {"name": "outer", "cat": "t", "ph": "X", "pid": 1, "tid": 1,
       "ts": 0, "dur": 100},
      {"name": "inner", "cat": "t", "ph": "X", "pid": 1, "tid": 1,
       "ts": 10, "dur": 20},
      {"name": "next", "cat": "t", "ph": "X", "pid": 1, "tid": 1,
       "ts": 200, "dur": 5})"));
  const std::vector<std::string> v = LintTraceJson(doc);
  EXPECT_TRUE(v.empty()) << "first violation: " << v.front();
}

TEST(ReportLintTest, FlagsNonMonotonicTimestamps) {
  const JsonValue doc = MustParse(TraceDoc(
      R"({"name": "a", "ph": "X", "tid": 1, "ts": 100, "dur": 1},
         {"name": "b", "ph": "X", "tid": 1, "ts": 50, "dur": 1})"));
  const std::vector<std::string> v = LintTraceJson(doc);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v.front().find("monotonicity"), std::string::npos);
}

TEST(ReportLintTest, MonotonicityIsPerThread) {
  const JsonValue doc = MustParse(TraceDoc(
      R"({"name": "a", "ph": "X", "tid": 1, "ts": 100, "dur": 1},
         {"name": "b", "ph": "X", "tid": 2, "ts": 50, "dur": 1})"));
  EXPECT_TRUE(LintTraceJson(doc).empty());
}

TEST(ReportLintTest, FlagsNegativeDurationAndTimestamp) {
  const JsonValue doc = MustParse(TraceDoc(
      R"({"name": "a", "ph": "X", "tid": 1, "ts": -5, "dur": 1},
         {"name": "b", "ph": "X", "tid": 1, "ts": 5, "dur": -1})"));
  const std::vector<std::string> v = LintTraceJson(doc);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_NE(v[0].find("negative timestamp"), std::string::npos);
  EXPECT_NE(v[1].find("negative duration"), std::string::npos);
}

TEST(ReportLintTest, FlagsOverlappingSpans) {
  // [0,100) then [50,150): overlaps without nesting.
  const JsonValue doc = MustParse(TraceDoc(
      R"({"name": "a", "ph": "X", "tid": 1, "ts": 0, "dur": 100},
         {"name": "b", "ph": "X", "tid": 1, "ts": 50, "dur": 100})"));
  const std::vector<std::string> v = LintTraceJson(doc);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v.front().find("overlaps the enclosing span"), std::string::npos);
}

TEST(ReportLintTest, FlagsUnsupportedPhaseAndMissingFields) {
  const JsonValue doc = MustParse(TraceDoc(
      R"({"name": "a", "ph": "B", "tid": 1, "ts": 0},
         {"name": "b", "ph": "X", "tid": 1, "dur": 1},
         {"name": "", "ph": "X", "tid": 1, "ts": 0, "dur": 1})"));
  const std::vector<std::string> v = LintTraceJson(doc);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_NE(v[0].find("unsupported phase"), std::string::npos);
  EXPECT_NE(v[1].find("no numeric \"ts\""), std::string::npos);
  EXPECT_NE(v[2].find("non-empty string \"name\""), std::string::npos);
}

TEST(ReportLintTest, FlagsInconsistentOtherData) {
  const JsonValue doc = MustParse(
      R"({"schema": "opim.trace.v1",
          "otherData": {"recorded_events": 2, "dropped_events": 0},
          "traceEvents": [
            {"name": "a", "ph": "X", "tid": 1, "ts": 0, "dur": 1}
          ]})");
  const std::vector<std::string> v = LintTraceJson(doc);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v.front().find("recorded_events"), std::string::npos);
}

TEST(ReportLintTest, FlagsWrongTraceSchema) {
  const JsonValue doc = MustParse(
      R"({"schema": "opim.trace.v999", "traceEvents": []})");
  const std::vector<std::string> v = LintTraceJson(doc);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v.front().find("unknown schema version"), std::string::npos);
}

}  // namespace
}  // namespace opim
