#include "obs/timer.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "obs/metrics.h"

namespace opim {
namespace {

TEST(ScopedTimerTest, ElapsedIsMonotone) {
  ScopedTimer timer(nullptr);
  uint64_t a = timer.ElapsedMicros();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  uint64_t b = timer.ElapsedMicros();
  EXPECT_GE(b, a);
  EXPECT_GE(b, 2000u);
  EXPECT_GE(timer.ElapsedSeconds(), 0.002);
}

TEST(ScopedTimerTest, RecordsIntoHistogramOnDestruction) {
  Histogram hist;
  {
    ScopedTimer timer(&hist);
    EXPECT_EQ(hist.Count(), 0u);  // nothing recorded while alive
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(hist.Count(), 1u);
  EXPECT_GE(hist.Sum(), 1000u);  // at least 1ms in microseconds
}

TEST(ScopedTimerTest, NullHistogramMeasuresOnly) {
  // Must not crash on destruction.
  ScopedTimer timer(nullptr);
  EXPECT_GE(timer.ElapsedMicros(), 0u);
}

TEST(PhaseTimerTest, AccumulatesNamedPhases) {
  PhaseTimer timer;
  timer.Start("generate");
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  timer.Start("greedy");
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  timer.Stop();

  EXPECT_GE(timer.Seconds("generate"), 0.002);
  EXPECT_GE(timer.Seconds("greedy"), 0.001);
  EXPECT_EQ(timer.Seconds("unknown"), 0.0);
  ASSERT_EQ(timer.phases().size(), 2u);
  EXPECT_EQ(timer.phases()[0].first, "generate");
  EXPECT_EQ(timer.phases()[1].first, "greedy");
  EXPECT_GE(timer.TotalSeconds(),
            timer.Seconds("generate") + timer.Seconds("greedy") - 1e-9);
}

TEST(PhaseTimerTest, ReenteringResumesTotal) {
  PhaseTimer timer;
  timer.Start("a");
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  timer.Start("b");
  timer.Start("a");  // resume
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  timer.Stop();
  EXPECT_GE(timer.Seconds("a"), 0.002);
  ASSERT_EQ(timer.phases().size(), 2u);  // no duplicate entry for "a"
}

TEST(PhaseTimerTest, SecondsIncludesInFlightSegment) {
  PhaseTimer timer;
  timer.Start("open");
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_GE(timer.Seconds("open"), 0.001);  // still running
  timer.Stop();
}

TEST(PhaseTimerTest, PublishToRegistry) {
  PhaseTimer timer;
  timer.Start("generate");
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  timer.Stop();

  MetricsRegistry registry;
  timer.PublishTo(registry, "test.phase.");
  MetricsSnapshot snap = registry.Snapshot();
  const HistogramSample* sample = snap.FindHistogram("test.phase.generate_us");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->count, 1u);
  EXPECT_GE(sample->sum, 1000u);
}

}  // namespace
}  // namespace opim
