// Tests for the trace-event subsystem (obs/trace.h): span recording and
// RAII scoping, per-thread nesting in the emitted Chrome-trace JSON,
// ring-buffer overflow accounting, concurrent recording, and the
// report_lint validation of the recorder's own output.

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/json_reader.h"
#include "obs/metrics.h"
#include "obs/report_lint.h"
#include "support/thread_pool.h"

namespace opim {
namespace {

using Clock = TraceRecorder::Clock;

/// Every test records against the process-wide Default() recorder, so the
/// fixture guarantees the session is torn down even on assertion failure.
class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override { TraceRecorder::Default().StopSession(); }
};

TEST_F(TraceTest, InactiveRecorderDropsNothingAndRecordsNothing) {
  TraceRecorder& rec = TraceRecorder::Default();
  ASSERT_FALSE(rec.active());
  rec.RecordComplete("x", "test", Clock::now(), Clock::now());
  // No session: the event vanishes without touching any counter.
  rec.StartSession();
  EXPECT_EQ(rec.recorded_events(), 0u);
  EXPECT_EQ(rec.dropped_events(), 0u);
}

TEST_F(TraceTest, RecordsCompleteEventsWithArgs) {
  TraceRecorder& rec = TraceRecorder::Default();
  rec.StartSession();
  const auto t0 = Clock::now();
  rec.RecordComplete("outer", "test", t0, t0 + std::chrono::microseconds(50),
                     TraceArg{"iter", 3});
  ASSERT_EQ(rec.recorded_events(), 1u);
  TraceSnapshot snap = rec.Snapshot();
  ASSERT_EQ(snap.threads.size(), 1u);
  ASSERT_EQ(snap.threads[0].events.size(), 1u);
  const TraceEvent& ev = snap.threads[0].events[0];
  EXPECT_STREQ(ev.name, "outer");
  EXPECT_STREQ(ev.category, "test");
  EXPECT_EQ(ev.dur_us, 50u);
  ASSERT_NE(ev.arg0.key, nullptr);
  EXPECT_STREQ(ev.arg0.key, "iter");
  EXPECT_EQ(ev.arg0.value, 3u);
  EXPECT_EQ(ev.arg1.key, nullptr);
}

TEST_F(TraceTest, TraceSpanRaiiRecordsOnDestruction) {
  TraceRecorder& rec = TraceRecorder::Default();
  rec.StartSession();
  {
    TraceSpan span("scoped", "test");
    EXPECT_EQ(rec.recorded_events(), 0u);  // records at scope exit
  }
  EXPECT_EQ(rec.recorded_events(), 1u);
}

TEST_F(TraceTest, TraceSpanIsInertWithoutSession) {
  TraceRecorder& rec = TraceRecorder::Default();
  ASSERT_FALSE(rec.active());
  {
    TraceSpan span("scoped", "test");
  }
  rec.StartSession();
  EXPECT_EQ(rec.recorded_events(), 0u);
}

TEST_F(TraceTest, SpansNestPerThreadInEmittedJson) {
  TraceRecorder& rec = TraceRecorder::Default();
  rec.StartSession();
  // Recreate the RAII pattern with explicit timestamps: children end
  // before their parents, published in end order (inner first).
  const auto t0 = Clock::now();
  auto us = [&](uint64_t n) { return t0 + std::chrono::microseconds(n); };
  rec.RecordComplete("inner1", "test", us(10), us(20));
  rec.RecordComplete("inner2", "test", us(30), us(45));
  rec.RecordComplete("outer", "test", us(5), us(50));
  rec.RecordComplete("sibling", "test", us(60), us(70));

  Result<JsonValue> doc = ParseJson(rec.ToChromeJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const std::vector<std::string> violations = LintTraceJson(doc.ValueOrDie());
  EXPECT_TRUE(violations.empty())
      << "first violation: " << violations.front();

  // The "X" events must come out begin-sorted with the parent first.
  const auto& events = doc.ValueOrDie().Find("traceEvents")->AsArray();
  std::vector<std::string> names;
  for (const JsonValue& ev : events) {
    if (ev.Find("ph")->AsString() == "X") {
      names.push_back(ev.Find("name")->AsString());
    }
  }
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "outer");
  EXPECT_EQ(names[1], "inner1");
  EXPECT_EQ(names[2], "inner2");
  EXPECT_EQ(names[3], "sibling");
}

TEST_F(TraceTest, OverflowDropsNewEventsAndPreservesOldOnes) {
  TraceRecorder& rec = TraceRecorder::Default();
#if defined(OPIM_TELEMETRY_ENABLED) && OPIM_TELEMETRY_ENABLED
  Counter* dropped_counter = MetricsRegistry::Default().FindOrCreateCounter(
      "opim.obs.trace_events_dropped");
  const uint64_t counter_before = dropped_counter->Value();
#endif
  TraceOptions options;
  options.events_per_thread = 4;
  rec.StartSession(options);
  const auto t0 = Clock::now();
  auto us = [&](uint64_t n) { return t0 + std::chrono::microseconds(n); };
  static const char* const kNames[] = {"e0", "e1", "e2", "e3"};
  for (uint64_t i = 0; i < 4; ++i) {
    rec.RecordComplete(kNames[i], "test", us(i * 10), us(i * 10 + 5));
  }
  // Buffer full: these three drop, the first four stay intact.
  for (uint64_t i = 0; i < 3; ++i) {
    rec.RecordComplete("overflow", "test", us(100 + i), us(101 + i));
  }
  EXPECT_EQ(rec.recorded_events(), 4u);
  EXPECT_EQ(rec.dropped_events(), 3u);
#if defined(OPIM_TELEMETRY_ENABLED) && OPIM_TELEMETRY_ENABLED
  EXPECT_EQ(dropped_counter->Value() - counter_before, 3u);
#endif
  TraceSnapshot snap = rec.Snapshot();
  ASSERT_EQ(snap.threads.size(), 1u);
  ASSERT_EQ(snap.threads[0].events.size(), 4u);
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_STREQ(snap.threads[0].events[i].name, kNames[i]);
    EXPECT_EQ(snap.threads[0].events[i].dur_us, 5u);
  }
  EXPECT_EQ(snap.dropped_events, 3u);
}

TEST_F(TraceTest, StartSessionClearsPreviousEvents) {
  TraceRecorder& rec = TraceRecorder::Default();
  rec.StartSession();
  rec.RecordComplete("old", "test", Clock::now(), Clock::now());
  ASSERT_EQ(rec.recorded_events(), 1u);
  rec.StartSession();
  EXPECT_EQ(rec.recorded_events(), 0u);
  rec.RecordComplete("new", "test", Clock::now(), Clock::now());
  TraceSnapshot snap = rec.Snapshot();
  ASSERT_EQ(snap.recorded_events, 1u);
  EXPECT_STREQ(snap.threads[0].events[0].name, "new");
}

TEST_F(TraceTest, ConcurrentWritersGetDistinctBuffers) {
  TraceRecorder& rec = TraceRecorder::Default();
  rec.StartSession();
  constexpr int kThreads = 4;
  constexpr uint64_t kEventsEach = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec] {
      const auto t0 = Clock::now();
      for (uint64_t i = 0; i < kEventsEach; ++i) {
        rec.RecordComplete("work", "test",
                           t0 + std::chrono::microseconds(2 * i),
                           t0 + std::chrono::microseconds(2 * i + 1));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(rec.recorded_events(), kThreads * kEventsEach);
  EXPECT_EQ(rec.dropped_events(), 0u);
  TraceSnapshot snap = rec.Snapshot();
  ASSERT_EQ(snap.threads.size(), static_cast<size_t>(kThreads));
  for (const auto& t : snap.threads) {
    EXPECT_EQ(t.events.size(), kEventsEach);
  }
  // The emitted JSON from a concurrent run still parses and lints clean.
  Result<JsonValue> doc = ParseJson(rec.ToChromeJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_TRUE(LintTraceJson(doc.ValueOrDie()).empty());
}

#if defined(OPIM_TELEMETRY_ENABLED) && OPIM_TELEMETRY_ENABLED
TEST_F(TraceTest, ThreadPoolHookEmitsTaskSpans) {
  TraceRecorder& rec = TraceRecorder::Default();
  rec.StartSession();  // installs ThreadPool::SetTaskSpanHook
  {
    ThreadPool pool(2);
    for (int i = 0; i < 8; ++i) {
      pool.Submit([] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      });
    }
    pool.Wait();
  }
  rec.StopSession();
  TraceSnapshot snap = rec.Snapshot();
  uint64_t task_spans = 0;
  for (const auto& t : snap.threads) {
    for (const TraceEvent& ev : t.events) {
      if (std::string_view(ev.name) == "task") ++task_spans;
    }
  }
  EXPECT_EQ(task_spans, 8u);
}
#endif  // OPIM_TELEMETRY_ENABLED

TEST_F(TraceTest, ChromeJsonCarriesSchemaAndThreadMetadata) {
  TraceRecorder& rec = TraceRecorder::Default();
  rec.StartSession();
  rec.RecordComplete("x", "test", Clock::now(),
                     Clock::now() + std::chrono::microseconds(1));
  Result<JsonValue> doc = ParseJson(rec.ToChromeJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue& root = doc.ValueOrDie();
  EXPECT_EQ(root.Find("schema")->AsString(), "opim.trace.v1");
  const JsonValue* other = root.Find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->Find("recorded_events")->AsNumber(), 1.0);
  EXPECT_EQ(other->Find("dropped_events")->AsNumber(), 0.0);
  // First traceEvents entry is the thread_name metadata record.
  const auto& events = root.Find("traceEvents")->AsArray();
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(events[0].Find("ph")->AsString(), "M");
  EXPECT_EQ(events[0].Find("name")->AsString(), "thread_name");
}

TEST(TraceMacrosTest, SpanMacrosCompileAndScopeCorrectly) {
  TraceRecorder& rec = TraceRecorder::Default();
  rec.StartSession();
  {
    OPIM_TR_SPAN("plain", "test");
    OPIM_TR_SPAN1("one_arg", "test", "n", 7);
    OPIM_TR_SPAN2("two_args", "test", "a", 1, "b", 2);
  }
#if defined(OPIM_TELEMETRY_ENABLED) && OPIM_TELEMETRY_ENABLED
  EXPECT_EQ(rec.recorded_events(), 3u);
#else
  EXPECT_EQ(rec.recorded_events(), 0u);
#endif
  rec.StopSession();
}

}  // namespace
}  // namespace opim
