#include "obs/run_report.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"

namespace opim {
namespace {

// --- Minimal JSON parser (test-only) -----------------------------------
// Just enough to round-trip what JsonWriter emits: objects, arrays,
// strings with the escapes Escape() produces, numbers, true/false/null.

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue& at(const std::string& key) const {
    auto it = object.find(key);
    EXPECT_NE(it, object.end()) << "missing key: " << key;
    static const JsonValue kMissing;
    return it == object.end() ? kMissing : it->second;
  }
  bool has(const std::string& key) const { return object.count(key) > 0; }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue Parse() {
    JsonValue v = ParseValue();
    SkipWs();
    EXPECT_EQ(pos_, text_.size()) << "trailing garbage";
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\n' ||
                                   text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  char Peek() {
    SkipWs();
    EXPECT_LT(pos_, text_.size()) << "unexpected end of JSON";
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void Expect(char c) {
    EXPECT_EQ(Peek(), c) << "at offset " << pos_;
    ++pos_;
  }

  JsonValue ParseValue() {
    switch (Peek()) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
      case 'f':
        return ParseBool();
      case 'n':
        pos_ += 4;
        return JsonValue{};
      default:
        return ParseNumber();
    }
  }

  JsonValue ParseObject() {
    JsonValue v;
    v.kind = JsonValue::kObject;
    Expect('{');
    if (Peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      JsonValue key = ParseString();
      Expect(':');
      v.object.emplace(key.str, ParseValue());
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      return v;
    }
  }

  JsonValue ParseArray() {
    JsonValue v;
    v.kind = JsonValue::kArray;
    Expect('[');
    if (Peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(ParseValue());
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      return v;
    }
  }

  JsonValue ParseString() {
    JsonValue v;
    v.kind = JsonValue::kString;
    Expect('"');
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        v.str += c;
        continue;
      }
      EXPECT_LT(pos_, text_.size());
      char esc = text_[pos_++];
      switch (esc) {
        case 'n': v.str += '\n'; break;
        case 't': v.str += '\t'; break;
        case 'r': v.str += '\r'; break;
        case 'b': v.str += '\b'; break;
        case 'f': v.str += '\f'; break;
        case 'u': {
          unsigned code = 0;
          std::sscanf(text_.substr(pos_, 4).c_str(), "%4x", &code);
          pos_ += 4;
          v.str += static_cast<char>(code);
          break;
        }
        default: v.str += esc;
      }
    }
    Expect('"');
    return v;
  }

  JsonValue ParseBool() {
    JsonValue v;
    v.kind = JsonValue::kBool;
    if (text_[pos_] == 't') {
      v.boolean = true;
      pos_ += 4;
    } else {
      pos_ += 5;
    }
    return v;
  }

  JsonValue ParseNumber() {
    JsonValue v;
    v.kind = JsonValue::kNumber;
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    v.number = std::stod(text_.substr(start, pos_ - start));
    return v;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// -----------------------------------------------------------------------

TEST(JsonWriterTest, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonWriter::Escape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonWriter::Escape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonWriter::Escape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonWriter::Escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonWriterTest, NestedDocument) {
  JsonWriter w;
  w.BeginObject();
  w.Key("s").Value("text");
  w.Key("i").Value(uint64_t{42});
  w.Key("d").Value(2.5);
  w.Key("b").Value(true);
  w.Key("arr").BeginArray();
  w.Value(uint64_t{1});
  w.Value(uint64_t{2});
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"s\":\"text\",\"i\":42,\"d\":2.5,\"b\":true,\"arr\":[1,2]}");
}

TEST(RunReportTest, JsonRoundTrip) {
  RunReport report;
  report.AddInfo("algorithm", "opim-c+");
  report.AddInfo("quoted", "needs \"escaping\"\n");
  report.AddResult("alpha", 0.632);
  report.AddResult("rr_sets", 4096);
  report.AddIteration()
      .Set("iteration", 1)
      .Set("alpha", 0.25)
      .Set("generate_seconds", 0.125);
  report.AddIteration()
      .Set("iteration", 2)
      .Set("alpha", 0.75)
      .Set("generate_seconds", 0.5);

  MetricsRegistry registry;
  registry.FindOrCreateCounter("opim.rrset.sets_generated")->Add(4096);
  registry.FindOrCreateHistogram("opim.select.greedy_us")->Record(300);
  report.SetMetrics(registry.Snapshot());

  JsonValue root = JsonParser(report.ToJson()).Parse();
  EXPECT_EQ(root.at("schema").str, "opim.run_report.v1");
  EXPECT_EQ(root.at("info").at("algorithm").str, "opim-c+");
  EXPECT_EQ(root.at("info").at("quoted").str, "needs \"escaping\"\n");
  EXPECT_DOUBLE_EQ(root.at("results").at("alpha").number, 0.632);
  EXPECT_DOUBLE_EQ(root.at("results").at("rr_sets").number, 4096.0);

  const JsonValue& iterations = root.at("iterations");
  ASSERT_EQ(iterations.array.size(), 2u);
  EXPECT_DOUBLE_EQ(iterations.array[0].at("alpha").number, 0.25);
  EXPECT_DOUBLE_EQ(iterations.array[1].at("generate_seconds").number, 0.5);

  const JsonValue& metrics = root.at("metrics");
  EXPECT_DOUBLE_EQ(
      metrics.at("counters").at("opim.rrset.sets_generated").number, 4096.0);
  const JsonValue& hist =
      metrics.at("histograms").at("opim.select.greedy_us");
  EXPECT_DOUBLE_EQ(hist.at("count").number, 1.0);
  EXPECT_DOUBLE_EQ(hist.at("sum").number, 300.0);
  ASSERT_EQ(hist.at("buckets").array.size(), 1u);
  EXPECT_DOUBLE_EQ(hist.at("buckets").array[0].at("count").number, 1.0);
}

TEST(RunReportTest, EmptyReportIsValidJson) {
  RunReport report;
  JsonValue root = JsonParser(report.ToJson()).Parse();
  EXPECT_EQ(root.at("schema").str, "opim.run_report.v1");
  EXPECT_TRUE(root.at("info").object.empty());
  EXPECT_TRUE(root.at("iterations").array.empty());
  EXPECT_TRUE(root.has("metrics"));
}

TEST(RunReportTest, IterationsToCsv) {
  RunReport report;
  report.AddIteration().Set("iteration", 1).Set("alpha", 0.5);
  report.AddIteration().Set("iteration", 2).Set("alpha", 0.75);
  const std::string csv = report.IterationsToCsv();
  EXPECT_EQ(csv, "iteration,alpha\n1,0.5\n2,0.75\n");
  EXPECT_TRUE(RunReport().IterationsToCsv().empty());
}

TEST(RunReportTest, CsvEscapeQuotesOnlyWhenNeeded) {
  // Plain fields pass through unquoted.
  EXPECT_EQ(RunReport::CsvEscape("alpha"), "alpha");
  EXPECT_EQ(RunReport::CsvEscape(""), "");
  // RFC 4180: fields containing separators, quotes, or line breaks are
  // quoted, with embedded quotes doubled.
  EXPECT_EQ(RunReport::CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(RunReport::CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(RunReport::CsvEscape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(RunReport::CsvEscape("cr\rhere"), "\"cr\rhere\"");
}

TEST(RunReportTest, CsvHeaderEscapesHostileColumnNames) {
  RunReport report;
  report.AddIteration()
      .Set("time, seconds", 1.5)
      .Set("theta \"lower\"", 128);
  const std::string csv = report.IterationsToCsv();
  // Strict-CSV round-trip: the header line must stay one record with two
  // fields, so the comma and quotes in the names are escaped.
  const std::string header = csv.substr(0, csv.find('\n'));
  EXPECT_EQ(header, "\"time, seconds\",\"theta \"\"lower\"\"\"");
  EXPECT_EQ(csv.substr(csv.find('\n') + 1), "1.5,128\n");
}

TEST(RunReportTest, WriteJsonToFile) {
  RunReport report;
  report.AddInfo("k", "v");
  std::string path = ::testing::TempDir() + "/opim_run_report_test.json";
  ASSERT_TRUE(report.WriteJson(path).ok());
  FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[4096];
  size_t len = std::fread(buf, 1, sizeof(buf), f);
  std::fclose(f);
  std::remove(path.c_str());
  JsonValue root = JsonParser(std::string(buf, len)).Parse();
  EXPECT_EQ(root.at("info").at("k").str, "v");
}

TEST(RunReportTest, WriteJsonBadPathFails) {
  RunReport report;
  EXPECT_FALSE(report.WriteJson("/nonexistent-dir/x/y.json").ok());
}

}  // namespace
}  // namespace opim
