#include "obs/log.h"

#include <gtest/gtest.h>

#include <string>

namespace opim {
namespace {

/// Restores the global log level after each test.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(saved_); }

 private:
  LogLevel saved_ = LogLevel::kWarn;
};

TEST_F(LogTest, ParseLogLevelAcceptsKnownNames) {
  LogLevel level = LogLevel::kOff;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("INFO", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("Warn", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("warning", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevel("off", &level));
  EXPECT_EQ(level, LogLevel::kOff);
}

TEST_F(LogTest, ParseLogLevelRejectsUnknown) {
  LogLevel level = LogLevel::kError;
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_EQ(level, LogLevel::kError);  // untouched on failure
}

TEST_F(LogTest, LevelNames) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(LogLevelName(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(LogLevelName(LogLevel::kWarn), "WARN");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "ERROR");
  EXPECT_STREQ(LogLevelName(LogLevel::kOff), "OFF");
}

TEST_F(LogTest, RuntimeFilter) {
  SetLogLevel(LogLevel::kWarn);
  EXPECT_FALSE(LogLevelEnabled(LogLevel::kDebug));
  EXPECT_FALSE(LogLevelEnabled(LogLevel::kInfo));
  EXPECT_TRUE(LogLevelEnabled(LogLevel::kWarn));
  EXPECT_TRUE(LogLevelEnabled(LogLevel::kError));

  SetLogLevel(LogLevel::kOff);
  EXPECT_FALSE(LogLevelEnabled(LogLevel::kError));

  SetLogLevel(LogLevel::kDebug);
  EXPECT_TRUE(LogLevelEnabled(LogLevel::kDebug));
}

TEST_F(LogTest, FilteredMessagesDoNotEvaluateOperands) {
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto side_effect = [&evaluations] {
    ++evaluations;
    return "x";
  };
  OPIM_LOG(kDebug) << side_effect();
  OPIM_LOG(kInfo) << side_effect();
  OPIM_LOG(kWarn) << side_effect();
  EXPECT_EQ(evaluations, 0);
  OPIM_LOG(kError) << "to stderr: " << side_effect();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LogTest, EmittedMessageGoesToStderr) {
  SetLogLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  OPIM_LOG(kInfo) << "hello telemetry " << 42;
  std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("hello telemetry 42"), std::string::npos) << err;
  EXPECT_NE(err.find("[opim I"), std::string::npos) << err;
  EXPECT_NE(err.find("log_test.cc"), std::string::npos) << err;
}

TEST_F(LogTest, FilteredMessageEmitsNothing) {
  SetLogLevel(LogLevel::kWarn);
  ::testing::internal::CaptureStderr();
  OPIM_LOG(kInfo) << "should not appear";
  std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("should not appear"), std::string::npos) << err;
}

}  // namespace
}  // namespace opim
