// Differential goldens for crash-safe checkpoint/resume (OpimCOptions::
// checkpoint_dir / resume): a run resumed from a boundary .opimss
// snapshot must reproduce the uninterrupted run bit-for-bit — the same
// seed set, the same α certificate, the same RR-set counts — for the
// eager (1-thread) and pipelined (4-thread) schedules, from the first
// checkpoint, the last checkpoint, and a deterministic memory-budget
// trip. Also pins the checkpoint cadence accounting, the serialized
// run-state contents, and the checkpoint-failure-is-best-effort
// contract.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/opim_c.h"
#include "harness/datasets.h"
#include "rrset/snapshot.h"
#include "support/run_control.h"

namespace opim {
namespace {

constexpr uint32_t kK = 5;
constexpr double kEps = 0.1;
constexpr double kDelta = 0.01;

Graph TestGraph() { return MakeTinyTestGraph(512, 3); }

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string SnapshotPath(const std::string& dir) {
  return dir + "/opimc.opimss";
}

void ExpectSameRun(const OpimCResult& a, const OpimCResult& b) {
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_EQ(a.alpha, b.alpha);  // bitwise, not approximate
  EXPECT_EQ(a.num_rr_sets, b.num_rr_sets);
  EXPECT_EQ(a.total_rr_size, b.total_rr_size);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.rr_compressed_bytes, b.rr_compressed_bytes);
}

OpimCResult RunWith(const Graph& g, OpimCOptions o,
                    DiffusionModel model = DiffusionModel::kIndependentCascade) {
  return RunOpimC(g, model, kK, kEps, kDelta, o);
}

/// Resumes from `snapshot_path` with options matching the original run.
OpimCResult ResumeWith(const Graph& g, OpimCOptions o,
                       const std::string& snapshot_path,
                       DiffusionModel model = DiffusionModel::kIndependentCascade) {
  auto snap = LoadSnapshot(snapshot_path);
  EXPECT_TRUE(snap.ok()) << snap.status().ToString();
  RRPoolSnapshot loaded = std::move(snap).ValueOrDie();
  o.resume = &loaded;
  return RunWith(g, o, model);
}

TEST(CheckpointResumeTest, ResumeFromFirstCheckpointReproducesRunEager) {
  Graph g = TestGraph();
  OpimCOptions base;
  base.seed = 7;
  base.num_threads = 1;

  const OpimCResult reference = RunWith(g, base);
  ASSERT_GT(reference.iterations, 1u);

  // A huge cadence means exactly one checkpoint: the top of iteration 1,
  // right after the θ0 fill. Resuming from it replays the entire loop.
  OpimCOptions ck = base;
  ck.checkpoint_dir = FreshDir("ck_first");
  ck.checkpoint_every_iters = 1000;
  const OpimCResult checkpointed = RunWith(g, ck);
  ExpectSameRun(reference, checkpointed);
  EXPECT_EQ(checkpointed.checkpoints_written, 1u);
  EXPECT_GT(checkpointed.checkpoint_bytes_written, 0u);

  const OpimCResult resumed =
      ResumeWith(g, base, SnapshotPath(ck.checkpoint_dir));
  ExpectSameRun(reference, resumed);
  EXPECT_EQ(resumed.resumed_from_iteration, 1u);
  EXPECT_EQ(reference.resumed_from_iteration, 0u);
}

TEST(CheckpointResumeTest, ResumeFromLastCheckpointReproducesRunEager) {
  Graph g = TestGraph();
  OpimCOptions base;
  base.seed = 3;
  base.num_threads = 1;

  const OpimCResult reference = RunWith(g, base);

  OpimCOptions ck = base;
  ck.checkpoint_dir = FreshDir("ck_last");
  const OpimCResult checkpointed = RunWith(g, ck);
  ExpectSameRun(reference, checkpointed);
  // checkpoint_every = 1: one snapshot per executed iteration, the file
  // holding the last (top-of-final-iteration) state.
  EXPECT_EQ(checkpointed.checkpoints_written, reference.iterations);

  const OpimCResult resumed =
      ResumeWith(g, base, SnapshotPath(ck.checkpoint_dir));
  ExpectSameRun(reference, resumed);
  EXPECT_EQ(resumed.resumed_from_iteration, reference.iterations);
}

TEST(CheckpointResumeTest, ResumeReproducesRunPipelined) {
  // 4 threads with the default pipeline=true: speculative sampling must
  // not leak into the checkpoint (only the consumed batch counter is
  // serialized), so resume is still bit-identical.
  Graph g = TestGraph();
  OpimCOptions base;
  base.seed = 11;
  base.num_threads = 4;

  const OpimCResult reference = RunWith(g, base);
  ASSERT_GT(reference.iterations, 1u);

  OpimCOptions ck = base;
  ck.checkpoint_dir = FreshDir("ck_mt");
  ck.checkpoint_every_iters = 2;
  const OpimCResult checkpointed = RunWith(g, ck);
  ExpectSameRun(reference, checkpointed);

  const OpimCResult resumed =
      ResumeWith(g, base, SnapshotPath(ck.checkpoint_dir));
  ExpectSameRun(reference, resumed);
  EXPECT_GT(resumed.resumed_from_iteration, 0u);
}

TEST(CheckpointResumeTest, ResumeAcrossModelsAndBounds) {
  Graph g = TestGraph();
  for (DiffusionModel model : {DiffusionModel::kIndependentCascade,
                               DiffusionModel::kLinearThreshold}) {
    for (BoundKind bound :
         {BoundKind::kBasic, BoundKind::kImproved, BoundKind::kLeskovec}) {
      OpimCOptions base;
      base.seed = 19;
      base.num_threads = 1;
      base.bound = bound;
      const OpimCResult reference = RunWith(g, base, model);

      OpimCOptions ck = base;
      ck.checkpoint_dir = FreshDir("ck_mb");
      RunWith(g, ck, model);
      const OpimCResult resumed =
          ResumeWith(g, base, SnapshotPath(ck.checkpoint_dir), model);
      ExpectSameRun(reference, resumed);
    }
  }
}

TEST(CheckpointResumeTest, MemoryBudgetTripCheckpointsAndResumes) {
  // Pick the budget from the reference trace so the trip lands exactly
  // on the second-to-last iteration's boundary poll (the exact-footprint
  // check; generation's running estimates exclude the sampling view, so
  // they stay under this budget). The on-trip checkpoint must let a
  // second, unbudgeted run finish the job with the uninterrupted run's
  // exact answer.
  Graph g = TestGraph();
  OpimCOptions base;
  base.seed = 5;
  base.num_threads = 1;
  const OpimCResult reference = RunWith(g, base);
  ASSERT_GE(reference.iterations, 3u);
  const uint32_t trip_iter = reference.iterations - 1;
  const uint64_t budget = reference.trace[trip_iter - 1].rr_bytes - 1;
  ASSERT_GT(reference.trace[trip_iter - 2].rr_bytes, 0u);
  ASSERT_LT(reference.trace[trip_iter - 2].rr_bytes, budget);

  OpimCOptions tripped = base;
  tripped.checkpoint_dir = FreshDir("ck_budget");
  // Cadence larger than i_max: only the iteration-1 periodic snapshot
  // and the on-trip snapshot are written, so the resume genuinely
  // exercises the guardrail path's file.
  tripped.checkpoint_every_iters = 1000;
  RunControl control;
  control.SetMemoryBudgetBytes(budget);
  tripped.control = &control;
  const OpimCResult degraded = RunWith(g, tripped);
  ASSERT_EQ(degraded.guardrails.stop_reason, StopReason::kMemoryBudget);
  ASSERT_EQ(degraded.iterations, trip_iter);
  ASSERT_EQ(degraded.checkpoints_written, 2u);

  auto snap = LoadSnapshot(SnapshotPath(tripped.checkpoint_dir));
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  // The boundary Poll tripped the control, so the snapshot state is a
  // clean iteration boundary.
  EXPECT_EQ(snap.ValueOrDie().run.clean_boundary, 1u);
  EXPECT_EQ(snap.ValueOrDie().run.next_iteration, trip_iter);

  const OpimCResult resumed =
      ResumeWith(g, base, SnapshotPath(tripped.checkpoint_dir));
  ExpectSameRun(reference, resumed);
}

TEST(CheckpointResumeTest, CancelTripCheckpointsAndResumes) {
  // A pre-armed cancellation — a fully deterministic stand-in for
  // SIGINT — trips inside the θ0 fill, so the on-trip snapshot holds a
  // partial fill and is flagged clean_boundary=0: resumable and
  // deterministic, but not the uninterrupted schedule's state. The
  // resumed run must converge normally, and resuming twice must be
  // bit-identical (determinism survives the dirty boundary).
  Graph g = TestGraph();
  OpimCOptions base;
  base.seed = 13;
  base.num_threads = 1;

  OpimCOptions tripped = base;
  tripped.checkpoint_dir = FreshDir("ck_cancel");
  RunControl control;
  control.RequestCancel();
  tripped.control = &control;
  const OpimCResult degraded = RunWith(g, tripped);
  ASSERT_EQ(degraded.guardrails.stop_reason, StopReason::kCancelled);
  ASSERT_EQ(degraded.iterations, 1u);
  // The periodic top-of-loop write is skipped once the control has
  // tripped; only the on-trip snapshot lands.
  ASSERT_EQ(degraded.checkpoints_written, 1u);

  auto snap = LoadSnapshot(SnapshotPath(tripped.checkpoint_dir));
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_EQ(snap.ValueOrDie().run.clean_boundary, 0u);

  const OpimCResult resumed_a =
      ResumeWith(g, base, SnapshotPath(tripped.checkpoint_dir));
  const OpimCResult resumed_b =
      ResumeWith(g, base, SnapshotPath(tripped.checkpoint_dir));
  EXPECT_EQ(resumed_a.guardrails.stop_reason, StopReason::kConverged);
  EXPECT_EQ(resumed_a.resumed_from_iteration, 1u);
  EXPECT_EQ(resumed_a.seeds.size(), kK);
  ExpectSameRun(resumed_a, resumed_b);
  // The resumed run picked up where the cancel left off: it kept the
  // degraded run's pools and grew them.
  EXPECT_GE(resumed_a.num_rr_sets, degraded.num_rr_sets);
}

TEST(CheckpointResumeTest, ResumeRebuildsSelectionStateBitIdentically) {
  // A resumed run's first selection is a cold SelectionState rebuild
  // from the restored pools (the warm counts died with the original
  // process); everything after warm-starts again. Both the resumed run
  // and a from-scratch-selection (incremental off) run must reproduce
  // the uninterrupted incremental run exactly — including the query
  // answers, which read the trace the rebuilt state's selections fed.
  Graph g = TestGraph();
  OpimCOptions base;
  base.seed = 29;
  base.num_threads = 1;
  base.query_ks = {1, kK};
  ASSERT_TRUE(base.incremental_selection);  // the default under test

  const OpimCResult reference = RunWith(g, base);
  ASSERT_GT(reference.iterations, 1u);
  ASSERT_EQ(reference.queries.size(), 2u);

  OpimCOptions scratch = base;
  scratch.incremental_selection = false;
  const OpimCResult oracle = RunWith(g, scratch);
  ExpectSameRun(reference, oracle);

  OpimCOptions ck = base;
  ck.checkpoint_dir = FreshDir("ck_selstate");
  const OpimCResult checkpointed = RunWith(g, ck);
  ExpectSameRun(reference, checkpointed);

  const OpimCResult resumed =
      ResumeWith(g, base, SnapshotPath(ck.checkpoint_dir));
  ExpectSameRun(reference, resumed);
  EXPECT_EQ(resumed.resumed_from_iteration, reference.iterations);
  ASSERT_EQ(resumed.queries.size(), reference.queries.size());
  for (size_t i = 0; i < reference.queries.size(); ++i) {
    EXPECT_EQ(reference.queries[i].seeds, resumed.queries[i].seeds);
    EXPECT_EQ(reference.queries[i].alpha, resumed.queries[i].alpha);
    EXPECT_EQ(reference.queries[i].sigma_lower,
              resumed.queries[i].sigma_lower);
    EXPECT_EQ(reference.queries[i].sigma_upper,
              resumed.queries[i].sigma_upper);
  }
}

TEST(CheckpointResumeTest, SnapshotRunStateRecordsTheRunIdentity) {
  Graph g = TestGraph();
  OpimCOptions ck;
  ck.seed = 23;
  ck.num_threads = 2;
  ck.bound = BoundKind::kLeskovec;
  ck.checkpoint_dir = FreshDir("ck_state");
  const OpimCResult r = RunWith(g, ck, DiffusionModel::kLinearThreshold);
  ASSERT_GT(r.checkpoints_written, 0u);

  auto snap = LoadSnapshot(SnapshotPath(ck.checkpoint_dir));
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  const SnapshotRunState& rs = snap.ValueOrDie().run;
  EXPECT_EQ(rs.run_seed, 23u);
  EXPECT_EQ(rs.num_threads, 2u);
  EXPECT_EQ(rs.k, kK);
  EXPECT_EQ(rs.eps, kEps);
  EXPECT_EQ(rs.delta, kDelta);
  EXPECT_EQ(rs.bound, static_cast<uint32_t>(BoundKind::kLeskovec));
  EXPECT_EQ(rs.model, static_cast<uint32_t>(DiffusionModel::kLinearThreshold));
  EXPECT_EQ(rs.graph_nodes, g.num_nodes());
  EXPECT_EQ(rs.graph_edges, g.num_edges());
  EXPECT_EQ(rs.weights_checksum, 0u);
  EXPECT_EQ(rs.clean_boundary, 1u);
  EXPECT_GE(rs.next_iteration, 1u);
  EXPECT_LE(rs.next_iteration, r.i_max);
}

TEST(CheckpointResumeTest, CheckpointCadenceAccounting) {
  Graph g = TestGraph();
  OpimCOptions ck;
  ck.seed = 7;
  ck.num_threads = 1;
  ck.checkpoint_dir = FreshDir("ck_cadence");
  ck.checkpoint_every_iters = 2;
  const OpimCResult r = RunWith(g, ck);
  // Iterations 1, 3, 5, ... checkpoint: ceil(T / 2) snapshots.
  EXPECT_EQ(r.checkpoints_written, (uint64_t{r.iterations} + 1) / 2);
  EXPECT_GT(r.checkpoint_bytes_written, 0u);
  EXPECT_GE(r.checkpoint_write_seconds, 0.0);
}

TEST(CheckpointResumeTest, CheckpointFailureNeverStopsARun) {
  // An unwritable checkpoint_dir means every snapshot write fails; the
  // run must still converge with the exact uncheckpointed answer.
  Graph g = TestGraph();
  OpimCOptions base;
  base.seed = 7;
  base.num_threads = 1;
  const OpimCResult reference = RunWith(g, base);

  OpimCOptions ck = base;
  ck.checkpoint_dir = "/nonexistent/opim_checkpoints";
  const OpimCResult r = RunWith(g, ck);
  ExpectSameRun(reference, r);
  EXPECT_EQ(r.checkpoints_written, 0u);
  EXPECT_EQ(r.guardrails.stop_reason, StopReason::kConverged);
}

}  // namespace
}  // namespace opim
