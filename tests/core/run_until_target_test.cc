#include <gtest/gtest.h>

#include "core/online_maximizer.h"
#include "gen/generators.h"

namespace opim {
namespace {

TEST(RunUntilTargetTest, StopsWhenTargetReached) {
  Graph g = GenerateBarabasiAlbert(300, 5);
  OnlineMaximizer om(g, DiffusionModel::kIndependentCascade, 5, 0.05, 1);
  OnlineSnapshot snap =
      om.RunUntilTarget(BoundKind::kImproved, 0.5, /*batch=*/2000);
  EXPECT_GE(snap.alpha, 0.5);
  EXPECT_GT(om.num_rr_sets(), 0u);
}

TEST(RunUntilTargetTest, RespectsRRBudget) {
  Graph g = GenerateBarabasiAlbert(300, 5);
  OnlineMaximizer om(g, DiffusionModel::kLinearThreshold, 5, 0.05, 2);
  // An unreachable target with a small budget must stop at the budget.
  OnlineSnapshot snap = om.RunUntilTarget(BoundKind::kBasic, 0.9999,
                                          /*batch=*/500,
                                          /*max_rr_sets=*/3000);
  EXPECT_EQ(om.num_rr_sets(), 3000u);
  EXPECT_LT(snap.alpha, 0.9999);
}

TEST(RunUntilTargetTest, BatchLargerThanBudgetClamps) {
  Graph g = GenerateBarabasiAlbert(200, 4);
  OnlineMaximizer om(g, DiffusionModel::kIndependentCascade, 3, 0.1, 3);
  om.RunUntilTarget(BoundKind::kBasic, 2.0 /* impossible */, 100000, 1500);
  EXPECT_EQ(om.num_rr_sets(), 1500u);
}

TEST(RunUntilTargetTest, ZeroTargetStopsAfterOneBatch) {
  Graph g = GenerateBarabasiAlbert(200, 4);
  OnlineMaximizer om(g, DiffusionModel::kIndependentCascade, 3, 0.1, 4);
  om.RunUntilTarget(BoundKind::kImproved, 0.0, 700);
  EXPECT_EQ(om.num_rr_sets(), 700u);
}

}  // namespace
}  // namespace opim
