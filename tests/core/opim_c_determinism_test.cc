// Determinism regression for RunOpimC: for a fixed (seed, num_threads)
// the whole output — seed set, α, RR-set counts, per-iteration bounds —
// is pinned to golden values at 1 and 4 threads, and a repeated run must
// be bit-identical to the first. The RR stream is a function of
// (seed, num_threads) only, never of scheduling, pool reuse, or ingestion
// batching — this is what licenses the engine's caller-owned thread pool
// and CSR batch rebuilds. Like tests/regression/golden_test.cc, these
// constants WILL move if RNG consumption or tie-breaking changes; re-pin
// deliberately when that happens.

#include <gtest/gtest.h>

#include <vector>

#include "core/opim_c.h"
#include "harness/datasets.h"

namespace opim {
namespace {

struct GoldenRun {
  DiffusionModel model;
  unsigned threads;
  uint32_t iterations;
  uint64_t num_rr_sets;
  uint64_t total_rr_size;
  double alpha;
  std::vector<NodeId> seeds;
  double final_sigma_lower;
  double final_sigma_upper;
};

const GoldenRun kGolden[] = {
    {DiffusionModel::kIndependentCascade, 1, 7, 8704, 14089,
     0.54307160133221644, {350, 457, 461, 320, 509},
     21.28946378264753, 39.201946355548799},
    {DiffusionModel::kLinearThreshold, 1, 7, 8704, 14087,
     0.50325634260634255, {457, 350, 394, 509, 453},
     19.531358364039903, 38.809959677582704},
    {DiffusionModel::kIndependentCascade, 4, 6, 4352, 6960,
     0.47421925567990986, {457, 506, 477, 461, 507},
     18.098254081297995, 38.164317168752881},
    {DiffusionModel::kLinearThreshold, 4, 7, 8704, 14006,
     0.56857998788803421, {457, 461, 350, 509, 300},
     19.531358364039903, 34.351118189347972},
};

OpimCResult RunGolden(const GoldenRun& g) {
  Graph graph = MakeTinyTestGraph(512, 3);
  OpimCOptions options;
  options.seed = 42;
  options.num_threads = g.threads;
  return RunOpimC(graph, g.model, /*k=*/5, /*eps=*/0.2, /*delta=*/0.05,
                  options);
}

TEST(OpimCDeterminismTest, GoldenValuesAtOneAndFourThreads) {
  for (const GoldenRun& g : kGolden) {
    OpimCResult r = RunGolden(g);
    SCOPED_TRACE(testing::Message()
                 << "model=" << static_cast<int>(g.model)
                 << " threads=" << g.threads);
    EXPECT_EQ(r.iterations, g.iterations);
    EXPECT_EQ(r.i_max, 12u);
    EXPECT_EQ(r.num_rr_sets, g.num_rr_sets);
    EXPECT_EQ(r.total_rr_size, g.total_rr_size);
    EXPECT_EQ(r.seeds, g.seeds);
    EXPECT_DOUBLE_EQ(r.alpha, g.alpha);
    ASSERT_EQ(r.trace.size(), g.iterations);
    EXPECT_DOUBLE_EQ(r.trace.back().sigma_lower, g.final_sigma_lower);
    EXPECT_DOUBLE_EQ(r.trace.back().sigma_upper, g.final_sigma_upper);
  }
}

TEST(OpimCDeterminismTest, RepeatedRunsAreBitIdentical) {
  for (const GoldenRun& g : kGolden) {
    OpimCResult a = RunGolden(g);
    OpimCResult b = RunGolden(g);
    SCOPED_TRACE(testing::Message()
                 << "model=" << static_cast<int>(g.model)
                 << " threads=" << g.threads);
    EXPECT_EQ(a.seeds, b.seeds);
    EXPECT_EQ(a.num_rr_sets, b.num_rr_sets);
    EXPECT_EQ(a.total_rr_size, b.total_rr_size);
    EXPECT_EQ(a.alpha, b.alpha);  // exact, not approximate
    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (size_t i = 0; i < a.trace.size(); ++i) {
      EXPECT_EQ(a.trace[i].theta1, b.trace[i].theta1);
      EXPECT_EQ(a.trace[i].sigma_lower, b.trace[i].sigma_lower);
      EXPECT_EQ(a.trace[i].sigma_upper, b.trace[i].sigma_upper);
      EXPECT_EQ(a.trace[i].alpha, b.trace[i].alpha);
    }
  }
}

}  // namespace
}  // namespace opim
