// The pipelined doubling loop's determinism contract: with
// OpimCOptions::pipeline on (speculative next-doubling sampling overlapped
// with CELF + bounds, parallel CELF seeding) the entire output — seed set,
// α, per-iteration bounds, RR-pool sizes and compressed bytes — is
// byte-identical to the eager serial schedule (pipeline off) for the same
// (seed, num_threads). Also pins the speculation accounting invariants and
// that guardrail trips through the pipelined path still return valid
// anytime certificates (see docs/robustness.md).

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/opim_c.h"
#include "harness/datasets.h"
#include "obs/json_reader.h"
#include "obs/metrics.h"
#include "obs/report_lint.h"
#include "obs/run_report.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "support/run_control.h"

namespace opim {
namespace {

OpimCResult RunOnce(DiffusionModel model, unsigned threads, bool pipeline,
                RunControl* control = nullptr) {
  Graph graph = MakeTinyTestGraph(512, 3);
  OpimCOptions options;
  options.seed = 42;
  options.num_threads = threads;
  options.pipeline = pipeline;
  options.control = control;
  return RunOpimC(graph, model, /*k=*/5, /*eps=*/0.2, /*delta=*/0.05,
                  options);
}

void ExpectByteIdentical(const OpimCResult& a, const OpimCResult& b) {
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_EQ(a.alpha, b.alpha);  // exact, not approximate
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.num_rr_sets, b.num_rr_sets);
  EXPECT_EQ(a.total_rr_size, b.total_rr_size);
  // Compressed pool bytes are a strong checksum: any divergence in set
  // membership, ordering, or batching changes the varint stream length.
  EXPECT_EQ(a.rr_compressed_bytes, b.rr_compressed_bytes);
  EXPECT_EQ(a.rr_raw_member_bytes, b.rr_raw_member_bytes);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].theta1, b.trace[i].theta1);
    EXPECT_EQ(a.trace[i].sigma_lower, b.trace[i].sigma_lower);
    EXPECT_EQ(a.trace[i].sigma_upper, b.trace[i].sigma_upper);
    EXPECT_EQ(a.trace[i].alpha, b.trace[i].alpha);
  }
}

TEST(OpimCPipelineTest, PipelinedMatchesEagerScheduleByteIdentical) {
  for (DiffusionModel model : {DiffusionModel::kIndependentCascade,
                               DiffusionModel::kLinearThreshold}) {
    SCOPED_TRACE(testing::Message() << "model=" << static_cast<int>(model));
    OpimCResult eager = RunOnce(model, /*threads=*/4, /*pipeline=*/false);
    OpimCResult pipelined = RunOnce(model, /*threads=*/4, /*pipeline=*/true);
    ExpectByteIdentical(eager, pipelined);
    // The eager schedule never stages ahead; the pipelined one must have
    // merged every doubling from speculation (untripped multi-iteration
    // run) and discarded the final iteration's staged batches.
    EXPECT_EQ(eager.speculative_sets_used, 0u);
    EXPECT_EQ(eager.speculative_sets_discarded, 0u);
    ASSERT_GT(pipelined.iterations, 1u);
    EXPECT_GT(pipelined.speculative_sets_used, 0u);
  }
}

TEST(OpimCPipelineTest, SerialRunsIgnoreThePipelineFlag) {
  // num_threads == 1 has no pool, so speculation cannot overlap anything;
  // the flag must be inert and the run identical to the pinned serial
  // goldens either way.
  for (DiffusionModel model : {DiffusionModel::kIndependentCascade,
                               DiffusionModel::kLinearThreshold}) {
    SCOPED_TRACE(testing::Message() << "model=" << static_cast<int>(model));
    OpimCResult on = RunOnce(model, /*threads=*/1, /*pipeline=*/true);
    OpimCResult off = RunOnce(model, /*threads=*/1, /*pipeline=*/false);
    ExpectByteIdentical(on, off);
    EXPECT_EQ(on.speculative_sets_used, 0u);
    EXPECT_EQ(on.speculative_sets_discarded, 0u);
  }
}

TEST(OpimCPipelineTest, SpeculationAccountingInvariants) {
  for (DiffusionModel model : {DiffusionModel::kIndependentCascade,
                               DiffusionModel::kLinearThreshold}) {
    SCOPED_TRACE(testing::Message() << "model=" << static_cast<int>(model));
    OpimCResult r = RunOnce(model, /*threads=*/4, /*pipeline=*/true);
    ASSERT_FALSE(r.trace.empty());
    // Untripped run: every set beyond the two θ0 fills was merged from a
    // speculative staging buffer, exactly once.
    const uint64_t theta0_fill = 2 * r.trace.front().theta1;
    EXPECT_EQ(r.speculative_sets_used, r.num_rr_sets - theta0_fill);
    // Discards can only come from the final iteration's staged batches
    // (aborted at a poll boundary, so anywhere from 0 to a full doubling).
    EXPECT_LE(r.speculative_sets_discarded, r.num_rr_sets);
  }
}

TEST(OpimCPipelineTest, PreCancelledControlStillReturnsCertificate) {
  RunControl control;
  control.RequestCancel();
  OpimCResult r = RunOnce(DiffusionModel::kIndependentCascade, /*threads=*/4,
                      /*pipeline=*/true, &control);
  EXPECT_EQ(r.guardrails.stop_reason, StopReason::kCancelled);
  EXPECT_EQ(r.seeds.size(), 5u);
  EXPECT_TRUE(std::isfinite(r.alpha));
  EXPECT_GE(r.alpha, 0.0);
  // A stopped control suppresses speculation launches entirely.
  EXPECT_EQ(r.speculative_sets_used, 0u);
  EXPECT_EQ(r.speculative_sets_discarded, 0u);
}

TEST(OpimCPipelineTest, ExpiredDeadlineTripsThroughPipelinedPath) {
  RunControl control;
  control.SetDeadlineAfterMillis(0);
  OpimCResult r = RunOnce(DiffusionModel::kLinearThreshold, /*threads=*/4,
                      /*pipeline=*/true, &control);
  EXPECT_EQ(r.guardrails.stop_reason, StopReason::kDeadline);
  EXPECT_EQ(r.seeds.size(), 5u);
  EXPECT_TRUE(std::isfinite(r.alpha));
}

TEST(OpimCPipelineTest, TinyMemoryBudgetTripsThroughPipelinedPath) {
  RunControl control;
  control.SetMemoryBudgetBytes(1);
  OpimCResult r = RunOnce(DiffusionModel::kIndependentCascade, /*threads=*/4,
                      /*pipeline=*/true, &control);
  EXPECT_EQ(r.guardrails.stop_reason, StopReason::kMemoryBudget);
  EXPECT_EQ(r.seeds.size(), 5u);
  EXPECT_TRUE(std::isfinite(r.alpha));
  // Whatever was staged when the budget tripped was either merged (the
  // boundary had not exited yet) or discarded — never dropped on the
  // floor silently: the totals must still reconcile with the pools.
  EXPECT_GE(r.num_rr_sets, 2u);
}

#if OPIM_TELEMETRY_ENABLED
TEST(OpimCPipelineTest, SpeculationTelemetryLintsCleanAndMatchesResult) {
  // The pipelined loop's observability surface: the speculation counters
  // land in the default registry mirroring the result fields, the report
  // they are embedded in passes LintRunReportJson, and the overlap spans
  // (speculate_shard / speculate_merge / speculate_discard) produce a
  // Chrome trace that satisfies the timeline invariants LintTraceJson
  // enforces (per-thread monotone begins, non-negative durations,
  // nesting) even with speculative shards racing the selection spans.
  MetricsRegistry::Default().ResetValues();
  TraceRecorder& rec = TraceRecorder::Default();
  rec.StartSession();
  OpimCResult r = RunOnce(DiffusionModel::kIndependentCascade,
                          /*threads=*/4, /*pipeline=*/true);
  const std::string trace_json = rec.ToChromeJson();
  rec.StopSession();

  MetricsSnapshot snapshot = MetricsRegistry::Default().Snapshot();
  const CounterSample* used =
      snapshot.FindCounter("opim.rrset.speculative_sets_used");
  const CounterSample* discarded =
      snapshot.FindCounter("opim.rrset.speculative_sets_discarded");
  ASSERT_NE(used, nullptr);
  ASSERT_NE(discarded, nullptr);
  EXPECT_EQ(used->value, r.speculative_sets_used);
  EXPECT_EQ(discarded->value, r.speculative_sets_discarded);
  EXPECT_GT(used->value, 0u);

  RunReport report;
  report.AddInfo("algo", "opim-c");
  report.AddResult("alpha", r.alpha);
  report.AddResult("rr_sets", static_cast<double>(r.num_rr_sets));
  report.SetMetrics(std::move(snapshot));
  Result<JsonValue> report_doc = ParseJson(report.ToJson());
  ASSERT_TRUE(report_doc.ok()) << report_doc.status().ToString();
  const std::vector<std::string> report_violations =
      LintRunReportJson(report_doc.ValueOrDie());
  EXPECT_TRUE(report_violations.empty())
      << "first violation: " << report_violations.front();

  Result<JsonValue> trace_doc = ParseJson(trace_json);
  ASSERT_TRUE(trace_doc.ok()) << trace_doc.status().ToString();
  const std::vector<std::string> trace_violations =
      LintTraceJson(trace_doc.ValueOrDie());
  EXPECT_TRUE(trace_violations.empty())
      << "first violation: " << trace_violations.front();
  size_t spec_shards = 0, merges = 0, discards = 0;
  for (const JsonValue& ev :
       trace_doc.ValueOrDie().Find("traceEvents")->AsArray()) {
    const JsonValue* name = ev.Find("name");
    if (name == nullptr) continue;
    if (name->AsString() == "speculate_shard") ++spec_shards;
    if (name->AsString() == "speculate_merge") ++merges;
    if (name->AsString() == "speculate_discard") ++discards;
  }
  EXPECT_GT(spec_shards, 0u);
  EXPECT_GT(merges, 0u);
  // This configuration runs >1 iteration and exits with batches staged.
  EXPECT_EQ(discards, 1u);
}
#endif  // OPIM_TELEMETRY_ENABLED

TEST(OpimCPipelineTest, RepeatedPipelinedRunsAreBitIdentical) {
  for (DiffusionModel model : {DiffusionModel::kIndependentCascade,
                               DiffusionModel::kLinearThreshold}) {
    SCOPED_TRACE(testing::Message() << "model=" << static_cast<int>(model));
    OpimCResult a = RunOnce(model, /*threads=*/4, /*pipeline=*/true);
    OpimCResult b = RunOnce(model, /*threads=*/4, /*pipeline=*/true);
    ExpectByteIdentical(a, b);
    EXPECT_EQ(a.speculative_sets_used, b.speculative_sets_used);
  }
}

}  // namespace
}  // namespace opim
