// Differential golden contract of the out-of-core spill tier: a run
// whose memory budget forces cold RR chunks to disk must return the
// exact seed set and certificate of the fully-resident run — spilling
// moves bytes, never changes them. Dense constant-probability graphs
// keep the RR sets multi-member (inline singletons never touch the
// pool), so the pool actually spans chunks worth spilling.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>

#include "core/opim_c.h"
#include "gen/generators.h"
#include "support/run_control.h"

namespace opim {
namespace {

Graph DenseTestGraph() {
  GenOptions opt;
  opt.scheme = WeightScheme::kConstant;
  opt.constant_p = 0.25;
  opt.seed = 9;
  return GenerateBarabasiAlbert(1500, 4, false, opt);
}

OpimCResult RunEngine(const Graph& g, RunControl* control,
                      uint64_t budget_bytes, const std::string& spill_dir,
                      unsigned threads) {
  if (budget_bytes > 0) control->SetMemoryBudgetBytes(budget_bytes);
  OpimCOptions o;
  o.seed = 42;
  o.num_threads = threads;
  o.control = control;
  o.spill_dir = spill_dir;
  return RunOpimC(g, DiffusionModel::kIndependentCascade, 8, 0.25, 0.05, o);
}

class SpillDifferentialTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(SpillDifferentialTest, BudgetedSpillRunMatchesResidentRun) {
  const unsigned threads = GetParam();
  const Graph g = DenseTestGraph();

  // Reference: unlimited budget, no spill tier.
  RunControl free_control;
  const OpimCResult resident = RunEngine(g, &free_control, 0, "", threads);
  ASSERT_EQ(resident.guardrails.stop_reason, StopReason::kConverged);
  ASSERT_GT(resident.rr_compressed_bytes, 0u);
  uint64_t max_footprint = 0;
  for (const OpimCIteration& it : resident.trace) {
    max_footprint = std::max(max_footprint, it.rr_bytes);
  }
  ASSERT_GT(max_footprint, 0u);

  // Serial runs poll exact footprints, so the peak iteration-boundary
  // footprint itself is a binding budget (Poll trips at >=). Pipelined
  // runs additionally poll transient staging estimates whose observed
  // peak races across shards, and the staged bytes cannot be spilled
  // (they are not in the pools yet) — so the budget there sits above
  // any possible transient (1.5x the peak merged footprint) while its
  // spill trigger, half the budget, stays below the final boundary
  // pool bytes. Either way the spill tier must engage.
  const uint64_t budget =
      threads == 1 ? max_footprint : max_footprint + max_footprint / 2;

  if (threads == 1) {
    // Prove the budget genuinely binds: without the spill tier the same
    // run stops on the memory guardrail.
    RunControl no_spill_control;
    const OpimCResult stopped =
        RunEngine(g, &no_spill_control, budget, "", threads);
    ASSERT_EQ(stopped.guardrails.stop_reason, StopReason::kMemoryBudget);
  }

  // With the spill tier armed, cold chunks go to disk and the run must
  // converge bit-identically to the fully-resident reference.
  RunControl tight_control;
  const OpimCResult spilled =
      RunEngine(g, &tight_control, budget, ::testing::TempDir(), threads);
  EXPECT_EQ(spilled.guardrails.stop_reason, StopReason::kConverged)
      << "spill tier failed to keep the run under its budget";
  EXPECT_GT(spilled.spill_chunks_spilled, 0u)
      << "budget never engaged the spill tier (graph too small?)";
  EXPECT_GT(spilled.spilled_bytes, 0u);

  EXPECT_EQ(spilled.seeds, resident.seeds);
  EXPECT_EQ(spilled.alpha, resident.alpha);
  EXPECT_EQ(spilled.num_rr_sets, resident.num_rr_sets);
  EXPECT_EQ(spilled.total_rr_size, resident.total_rr_size);
  EXPECT_EQ(spilled.iterations, resident.iterations);
  EXPECT_EQ(spilled.rr_compressed_bytes, resident.rr_compressed_bytes);
}

INSTANTIATE_TEST_SUITE_P(SerialAndParallel, SpillDifferentialTest,
                         ::testing::Values(1u, 2u));

TEST(SpillDifferentialTest, ViewArenaIsByteIdenticalToo) {
  // The sealed SamplingView arena is the other storage move of this
  // layer: same RR stream, same seeds, same certificate.
  const Graph g = DenseTestGraph();
  OpimCOptions plain;
  plain.seed = 7;
  OpimCOptions sealed = plain;
  sealed.view_arena = true;
  const OpimCResult a =
      RunOpimC(g, DiffusionModel::kIndependentCascade, 5, 0.3, 0.05, plain);
  const OpimCResult b =
      RunOpimC(g, DiffusionModel::kIndependentCascade, 5, 0.3, 0.05, sealed);
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_EQ(a.alpha, b.alpha);
  EXPECT_EQ(a.num_rr_sets, b.num_rr_sets);
}

}  // namespace
}  // namespace opim
