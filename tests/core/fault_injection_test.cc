// Deterministic fault-injection coverage for the guardrail degradation
// paths (StopReason::kWorkerFailure plus the injected clock-skew and
// memory-spike trips). Meaningful only in OPIM_FAULT_INJECT=ON builds
// (scripts/run_all.sh's build-fi configuration); in normal builds the
// whole suite reduces to a compile-gate placeholder so the test target
// still builds and passes everywhere.

#include <gtest/gtest.h>

#include "support/fault_inject.h"

#if OPIM_FAULT_INJECT_ENABLED

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/opim_c.h"
#include "gen/generators.h"
#include "graph/graph_mmap.h"
#include "obs/metrics.h"
#include "rrset/parallel_generate.h"
#include "rrset/rr_collection.h"
#include "support/random.h"
#include "support/run_control.h"

namespace opim {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::Reset(); }
  void TearDown() override { fault::Reset(); }

  static Graph TestGraph() { return GenerateBarabasiAlbert(500, 5); }
};

TEST_F(FaultInjectionTest, RegistryCountsAndFiresOnce) {
  fault::Arm("unit.site", 3);
  EXPECT_FALSE(fault::ShouldFire("unit.site"));  // hit 1
  EXPECT_FALSE(fault::ShouldFire("unit.site"));  // hit 2
  EXPECT_TRUE(fault::ShouldFire("unit.site"));   // hit 3: fires
  EXPECT_FALSE(fault::ShouldFire("unit.site"));  // once only
  EXPECT_EQ(fault::Hits("unit.site"), 4u);
  EXPECT_EQ(fault::Hits("never.seen"), 0u);
}

TEST_F(FaultInjectionTest, WorkerThrowWithoutControlPropagates) {
  Graph g = TestGraph();
  RRCollection rr(g.num_nodes());
  fault::Arm("rrset.worker_throw", 5);
  EXPECT_THROW(ParallelGenerate(g, DiffusionModel::kIndependentCascade, &rr,
                                100, /*seed=*/1, /*num_threads=*/2),
               std::runtime_error);
}

TEST_F(FaultInjectionTest, WorkerThrowWithControlTripsWorkerFailure) {
  Graph g = TestGraph();
  fault::Arm("rrset.worker_throw", 5);
  RunControl control;
  OpimCOptions o;
  o.seed = 7;
  o.num_threads = 2;
  o.control = &control;
  OpimCResult r = RunOpimC(g, DiffusionModel::kIndependentCascade, 5, 0.3,
                           0.01, o);
  EXPECT_EQ(r.guardrails.stop_reason, StopReason::kWorkerFailure);
  EXPECT_EQ(r.seeds.size(), 5u);
  EXPECT_TRUE(std::isfinite(r.alpha));
  EXPECT_GE(r.alpha, 0.0);
  EXPECT_GE(r.guardrails.stop_latency_seconds, 0.0);
}

TEST_F(FaultInjectionTest, SpeculationThrowWithControlTripsWorkerFailure) {
  // rrset.speculation_throw is evaluated only inside *speculative* staged
  // shards (the pipelined doubling loop's lookahead sampling). When the
  // iteration does not converge, the staged batches ARE the doubling, so
  // a speculative worker exception follows the eager generate contract:
  // trip kWorkerFailure and finalize with a valid certificate.
  Graph g = TestGraph();
  fault::Arm("rrset.speculation_throw", 1);
  RunControl control;
  OpimCOptions o;
  o.seed = 7;
  o.num_threads = 2;
  o.pipeline = true;
  o.control = &control;
  OpimCResult r = RunOpimC(g, DiffusionModel::kIndependentCascade, 5, 0.3,
                           0.01, o);
  EXPECT_EQ(r.guardrails.stop_reason, StopReason::kWorkerFailure);
  EXPECT_EQ(r.seeds.size(), 5u);
  EXPECT_TRUE(std::isfinite(r.alpha));
  EXPECT_GE(r.alpha, 0.0);
}

TEST_F(FaultInjectionTest, SpeculationThrowWithoutControlPropagates) {
  Graph g = TestGraph();
  fault::Arm("rrset.speculation_throw", 1);
  OpimCOptions o;
  o.seed = 7;
  o.num_threads = 2;
  o.pipeline = true;
  EXPECT_THROW(
      RunOpimC(g, DiffusionModel::kIndependentCascade, 5, 0.3, 0.01, o),
      std::runtime_error);
}

TEST_F(FaultInjectionTest, SpeculationThrowNeverFiresOnEagerSchedule) {
  // The site must be dead on every non-speculative path: a pipeline=false
  // run samples the same batches eagerly and must complete untouched even
  // with the site armed on its first evaluation.
  Graph g = TestGraph();
  fault::Arm("rrset.speculation_throw", 1);
  OpimCOptions o;
  o.seed = 7;
  o.num_threads = 2;
  o.pipeline = false;
  OpimCResult r = RunOpimC(g, DiffusionModel::kIndependentCascade, 5, 0.3,
                           0.01, o);
  EXPECT_EQ(r.seeds.size(), 5u);
  EXPECT_EQ(fault::Hits("rrset.speculation_throw"), 0u);
}

TEST_F(FaultInjectionTest, ClockSkewTripsDeadlineMidGeneration) {
  Graph g = TestGraph();
  // Fire on a later poll so the trip lands mid-generation rather than at
  // the very first safe point.
  fault::Arm("runctl.clock_skew", 3);
  RunControl control;
  control.SetDeadlineAfterMillis(3'600'000);  // one hour: never naturally hit
  OpimCOptions o;
  o.seed = 7;
  o.control = &control;
  OpimCResult r = RunOpimC(g, DiffusionModel::kIndependentCascade, 5, 0.3,
                           0.01, o);
  EXPECT_EQ(r.guardrails.stop_reason, StopReason::kDeadline);
  EXPECT_EQ(r.seeds.size(), 5u);
  EXPECT_TRUE(std::isfinite(r.alpha));
  // The reported slack uses the real clock, not the skewed one: a run that
  // "missed" an hour-long deadline via injection still shows real slack.
  EXPECT_GT(r.guardrails.deadline_slack_seconds, 0.0);
}

TEST_F(FaultInjectionTest, MemSpikeTripsMemoryBudget) {
  Graph g = TestGraph();
  fault::Arm("runctl.mem_spike", 3);
  RunControl control;
  control.SetMemoryBudgetBytes(1ull << 40);  // 1 TiB: unreachable naturally
  OpimCOptions o;
  o.seed = 7;
  o.control = &control;
  OpimCResult r = RunOpimC(g, DiffusionModel::kIndependentCascade, 5, 0.3,
                           0.01, o);
  EXPECT_EQ(r.guardrails.stop_reason, StopReason::kMemoryBudget);
  EXPECT_EQ(r.seeds.size(), 5u);
  EXPECT_TRUE(std::isfinite(r.alpha));
}

TEST_F(FaultInjectionTest, MmapFailFallsBackToHeapLoad) {
  // io.mmap_fail kills the page-table path; LoadOpimg must degrade to
  // the heap read and return a bit-identical, just unmapped, graph.
  Graph g = GenerateBarabasiAlbert(200, 3);
  const std::string path = ::testing::TempDir() + "/opim_fi_mmap.opimg";
  ASSERT_TRUE(SaveOpimg(g, path).ok());
  fault::Arm("io.mmap_fail", 1);
  auto r = LoadOpimg(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r.ValueOrDie().arena_backed());
  EXPECT_EQ(r.ValueOrDie().num_nodes(), g.num_nodes());
  EXPECT_EQ(r.ValueOrDie().num_edges(), g.num_edges());
  EXPECT_EQ(fault::Hits("io.mmap_fail"), 1u);
  std::remove(path.c_str());
}

TEST_F(FaultInjectionTest, ShortWriteFailsTheSpillWithoutStateChange) {
  // io.short_write fires before any chunk is written: the spill call
  // reports IOError and the collection stays fully usable.
  RRCollection rr(1000, RRStoreOptions{.retain_set_costs = false});
  Rng rng(3);
  std::vector<NodeId> members;
  for (uint32_t i = 0; i < 2 * 4096 + 10; ++i) {
    members.clear();
    for (uint32_t j = 0; j < 4; ++j) members.push_back(rng.NextU32() % 1000);
    rr.AddSet(members, members.size());
  }
  ASSERT_TRUE(rr.EnableSpill({.dir = ::testing::TempDir()}).ok());
  fault::Arm("io.short_write", 1);
  auto spilled = rr.SpillColdChunks(0);
  ASSERT_FALSE(spilled.ok());
  EXPECT_EQ(spilled.status().code(), StatusCode::kIOError);
  EXPECT_EQ(rr.SpilledBytes(), 0u);
  EXPECT_EQ(rr.SpillStats().chunks_spilled, 0u);
  // The pool still decodes: nothing was freed or half-written.
  uint64_t checksum = 0;
  for (RRId id = 0; id < rr.num_sets(); ++id) {
    rr.ForEachMember(id, [&](NodeId v) { checksum += v; });
  }
  EXPECT_GT(checksum, 0u);
  // A later spill (site spent) succeeds on the untouched state.
  auto retry = rr.SpillColdChunks(0);
  ASSERT_TRUE(retry.ok());
  EXPECT_GT(retry.ValueOrDie(), 0u);
}

TEST_F(FaultInjectionTest, ShortWriteTripsSpillFailureInTheEngine) {
  // End-to-end: a budgeted spill-tier run whose spill write fails must
  // degrade with the distinct kSpillFailure reason — and still return a
  // valid anytime certificate, exactly like a memory-budget stop.
  GenOptions gopt;
  gopt.scheme = WeightScheme::kConstant;
  gopt.constant_p = 0.25;
  gopt.seed = 9;
  Graph g = GenerateBarabasiAlbert(1500, 4, false, gopt);
  OpimCOptions o;
  o.seed = 42;
  o.num_threads = 1;  // serial: polls see exact, deterministic footprints
  o.spill_dir = ::testing::TempDir();
  // Probe run (unbudgeted): its peak iteration-boundary footprint is a
  // binding budget under which the engine must spill sealed chunks —
  // the spill differential test pins that this exact configuration
  // converges once chunks hit the disk. Arming the write site instead
  // fails that first eviction.
  const OpimCResult probe =
      RunOpimC(g, DiffusionModel::kIndependentCascade, 8, 0.25, 0.05, o);
  ASSERT_FALSE(probe.trace.empty());
  uint64_t max_footprint = 0;
  for (const OpimCIteration& it : probe.trace) {
    max_footprint = std::max(max_footprint, it.rr_bytes);
  }
  ASSERT_GT(max_footprint, 0u);

  fault::Arm("io.short_write", 1);
  RunControl control;
  control.SetMemoryBudgetBytes(max_footprint);
  o.control = &control;
  OpimCResult r = RunOpimC(g, DiffusionModel::kIndependentCascade, 8, 0.25,
                           0.05, o);
  EXPECT_EQ(fault::Hits("io.short_write"), 1u);
  EXPECT_EQ(r.guardrails.stop_reason, StopReason::kSpillFailure);
  EXPECT_EQ(r.seeds.size(), 8u);
  EXPECT_TRUE(std::isfinite(r.alpha));
  EXPECT_GE(r.alpha, 0.0);
}

TEST_F(FaultInjectionTest, StateRebuildThrowFallsBackToColdSelection) {
  // select.state_rebuild_throw fails the persistent SelectionState's
  // cold sync (the first selection's state rebuild). The run must fall
  // back to from-scratch initial gains, count a warm-start fallback, and
  // finish with output identical to the unfaulted run — the state is an
  // execution cache, never behavior.
  Graph g = TestGraph();
  OpimCOptions o;
  o.seed = 7;
  o.num_threads = 1;
  o.query_ks = {2, 5};
  const OpimCResult reference =
      RunOpimC(g, DiffusionModel::kIndependentCascade, 5, 0.3, 0.01, o);

  fault::Reset();
  fault::Arm("select.state_rebuild_throw", 1);
  const MetricsSnapshot before = MetricsRegistry::Default().Snapshot();
  const OpimCResult r =
      RunOpimC(g, DiffusionModel::kIndependentCascade, 5, 0.3, 0.01, o);
  const MetricsSnapshot after = MetricsRegistry::Default().Snapshot();
  EXPECT_GE(fault::Hits("select.state_rebuild_throw"), 1u);
  EXPECT_EQ(r.guardrails.stop_reason, StopReason::kConverged);
  EXPECT_EQ(r.seeds, reference.seeds);
  EXPECT_EQ(r.alpha, reference.alpha);
  EXPECT_EQ(r.num_rr_sets, reference.num_rr_sets);
  EXPECT_EQ(r.iterations, reference.iterations);
  ASSERT_EQ(r.queries.size(), reference.queries.size());
  for (size_t i = 0; i < r.queries.size(); ++i) {
    EXPECT_EQ(r.queries[i].seeds, reference.queries[i].seeds);
    EXPECT_EQ(r.queries[i].alpha, reference.queries[i].alpha);
  }
  auto counter = [](const MetricsSnapshot& s, const char* name) -> uint64_t {
    const CounterSample* c = s.FindCounter(name);
    return c != nullptr ? c->value : 0;
  };
  // Counter is absent only when telemetry is compiled out of this
  // configuration; when present, exactly the one injected failure fell
  // back.
  if (after.FindCounter("opim.select.warm_start_fallbacks") != nullptr) {
    EXPECT_EQ(counter(after, "opim.select.warm_start_fallbacks") -
                  counter(before, "opim.select.warm_start_fallbacks"),
              1u);
  }
}

TEST_F(FaultInjectionTest, StateRebuildSiteDeadOnFromScratchSelection) {
  // With incremental_selection off there is no state sync at all, so the
  // site must never be evaluated and the armed run completes untouched.
  Graph g = TestGraph();
  fault::Arm("select.state_rebuild_throw", 1);
  OpimCOptions o;
  o.seed = 7;
  o.num_threads = 1;
  o.incremental_selection = false;
  OpimCResult r = RunOpimC(g, DiffusionModel::kIndependentCascade, 5, 0.3,
                           0.01, o);
  EXPECT_EQ(r.seeds.size(), 5u);
  EXPECT_EQ(fault::Hits("select.state_rebuild_throw"), 0u);
}

TEST_F(FaultInjectionTest, ArmedSerialRunsAreDeterministic) {
  // With one worker the fault schedule, the early-exit points, and hence
  // the whole degraded result are a pure function of (seed, arming).
  Graph g = TestGraph();
  auto run = [&] {
    fault::Reset();
    fault::Arm("runctl.clock_skew", 2);
    RunControl control;
    control.SetDeadlineAfterMillis(3'600'000);
    OpimCOptions o;
    o.seed = 7;
    o.num_threads = 1;
    o.control = &control;
    return RunOpimC(g, DiffusionModel::kIndependentCascade, 5, 0.3, 0.01, o);
  };
  OpimCResult a = run();
  OpimCResult b = run();
  EXPECT_EQ(a.guardrails.stop_reason, StopReason::kDeadline);
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_EQ(a.alpha, b.alpha);
  EXPECT_EQ(a.num_rr_sets, b.num_rr_sets);
  EXPECT_EQ(a.iterations, b.iterations);
}

}  // namespace
}  // namespace opim

#else  // !OPIM_FAULT_INJECT_ENABLED

TEST(FaultInjectionTest, CompiledOutInThisConfiguration) {
  // OPIM_FAULT_POINT must be the literal constant false here; the suite's
  // real assertions live in the OPIM_FAULT_INJECT=ON configuration.
  static_assert(!OPIM_FAULT_POINT("any.site"),
                "fault points must fold away when injection is disabled");
  SUCCEED();
}

#endif  // OPIM_FAULT_INJECT_ENABLED
