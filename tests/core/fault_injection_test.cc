// Deterministic fault-injection coverage for the guardrail degradation
// paths (StopReason::kWorkerFailure plus the injected clock-skew and
// memory-spike trips). Meaningful only in OPIM_FAULT_INJECT=ON builds
// (scripts/run_all.sh's build-fi configuration); in normal builds the
// whole suite reduces to a compile-gate placeholder so the test target
// still builds and passes everywhere.

#include <gtest/gtest.h>

#include "support/fault_inject.h"

#if OPIM_FAULT_INJECT_ENABLED

#include <cmath>
#include <stdexcept>

#include "core/opim_c.h"
#include "gen/generators.h"
#include "rrset/parallel_generate.h"
#include "rrset/rr_collection.h"
#include "support/run_control.h"

namespace opim {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::Reset(); }
  void TearDown() override { fault::Reset(); }

  static Graph TestGraph() { return GenerateBarabasiAlbert(500, 5); }
};

TEST_F(FaultInjectionTest, RegistryCountsAndFiresOnce) {
  fault::Arm("unit.site", 3);
  EXPECT_FALSE(fault::ShouldFire("unit.site"));  // hit 1
  EXPECT_FALSE(fault::ShouldFire("unit.site"));  // hit 2
  EXPECT_TRUE(fault::ShouldFire("unit.site"));   // hit 3: fires
  EXPECT_FALSE(fault::ShouldFire("unit.site"));  // once only
  EXPECT_EQ(fault::Hits("unit.site"), 4u);
  EXPECT_EQ(fault::Hits("never.seen"), 0u);
}

TEST_F(FaultInjectionTest, WorkerThrowWithoutControlPropagates) {
  Graph g = TestGraph();
  RRCollection rr(g.num_nodes());
  fault::Arm("rrset.worker_throw", 5);
  EXPECT_THROW(ParallelGenerate(g, DiffusionModel::kIndependentCascade, &rr,
                                100, /*seed=*/1, /*num_threads=*/2),
               std::runtime_error);
}

TEST_F(FaultInjectionTest, WorkerThrowWithControlTripsWorkerFailure) {
  Graph g = TestGraph();
  fault::Arm("rrset.worker_throw", 5);
  RunControl control;
  OpimCOptions o;
  o.seed = 7;
  o.num_threads = 2;
  o.control = &control;
  OpimCResult r = RunOpimC(g, DiffusionModel::kIndependentCascade, 5, 0.3,
                           0.01, o);
  EXPECT_EQ(r.guardrails.stop_reason, StopReason::kWorkerFailure);
  EXPECT_EQ(r.seeds.size(), 5u);
  EXPECT_TRUE(std::isfinite(r.alpha));
  EXPECT_GE(r.alpha, 0.0);
  EXPECT_GE(r.guardrails.stop_latency_seconds, 0.0);
}

TEST_F(FaultInjectionTest, SpeculationThrowWithControlTripsWorkerFailure) {
  // rrset.speculation_throw is evaluated only inside *speculative* staged
  // shards (the pipelined doubling loop's lookahead sampling). When the
  // iteration does not converge, the staged batches ARE the doubling, so
  // a speculative worker exception follows the eager generate contract:
  // trip kWorkerFailure and finalize with a valid certificate.
  Graph g = TestGraph();
  fault::Arm("rrset.speculation_throw", 1);
  RunControl control;
  OpimCOptions o;
  o.seed = 7;
  o.num_threads = 2;
  o.pipeline = true;
  o.control = &control;
  OpimCResult r = RunOpimC(g, DiffusionModel::kIndependentCascade, 5, 0.3,
                           0.01, o);
  EXPECT_EQ(r.guardrails.stop_reason, StopReason::kWorkerFailure);
  EXPECT_EQ(r.seeds.size(), 5u);
  EXPECT_TRUE(std::isfinite(r.alpha));
  EXPECT_GE(r.alpha, 0.0);
}

TEST_F(FaultInjectionTest, SpeculationThrowWithoutControlPropagates) {
  Graph g = TestGraph();
  fault::Arm("rrset.speculation_throw", 1);
  OpimCOptions o;
  o.seed = 7;
  o.num_threads = 2;
  o.pipeline = true;
  EXPECT_THROW(
      RunOpimC(g, DiffusionModel::kIndependentCascade, 5, 0.3, 0.01, o),
      std::runtime_error);
}

TEST_F(FaultInjectionTest, SpeculationThrowNeverFiresOnEagerSchedule) {
  // The site must be dead on every non-speculative path: a pipeline=false
  // run samples the same batches eagerly and must complete untouched even
  // with the site armed on its first evaluation.
  Graph g = TestGraph();
  fault::Arm("rrset.speculation_throw", 1);
  OpimCOptions o;
  o.seed = 7;
  o.num_threads = 2;
  o.pipeline = false;
  OpimCResult r = RunOpimC(g, DiffusionModel::kIndependentCascade, 5, 0.3,
                           0.01, o);
  EXPECT_EQ(r.seeds.size(), 5u);
  EXPECT_EQ(fault::Hits("rrset.speculation_throw"), 0u);
}

TEST_F(FaultInjectionTest, ClockSkewTripsDeadlineMidGeneration) {
  Graph g = TestGraph();
  // Fire on a later poll so the trip lands mid-generation rather than at
  // the very first safe point.
  fault::Arm("runctl.clock_skew", 3);
  RunControl control;
  control.SetDeadlineAfterMillis(3'600'000);  // one hour: never naturally hit
  OpimCOptions o;
  o.seed = 7;
  o.control = &control;
  OpimCResult r = RunOpimC(g, DiffusionModel::kIndependentCascade, 5, 0.3,
                           0.01, o);
  EXPECT_EQ(r.guardrails.stop_reason, StopReason::kDeadline);
  EXPECT_EQ(r.seeds.size(), 5u);
  EXPECT_TRUE(std::isfinite(r.alpha));
  // The reported slack uses the real clock, not the skewed one: a run that
  // "missed" an hour-long deadline via injection still shows real slack.
  EXPECT_GT(r.guardrails.deadline_slack_seconds, 0.0);
}

TEST_F(FaultInjectionTest, MemSpikeTripsMemoryBudget) {
  Graph g = TestGraph();
  fault::Arm("runctl.mem_spike", 3);
  RunControl control;
  control.SetMemoryBudgetBytes(1ull << 40);  // 1 TiB: unreachable naturally
  OpimCOptions o;
  o.seed = 7;
  o.control = &control;
  OpimCResult r = RunOpimC(g, DiffusionModel::kIndependentCascade, 5, 0.3,
                           0.01, o);
  EXPECT_EQ(r.guardrails.stop_reason, StopReason::kMemoryBudget);
  EXPECT_EQ(r.seeds.size(), 5u);
  EXPECT_TRUE(std::isfinite(r.alpha));
}

TEST_F(FaultInjectionTest, ArmedSerialRunsAreDeterministic) {
  // With one worker the fault schedule, the early-exit points, and hence
  // the whole degraded result are a pure function of (seed, arming).
  Graph g = TestGraph();
  auto run = [&] {
    fault::Reset();
    fault::Arm("runctl.clock_skew", 2);
    RunControl control;
    control.SetDeadlineAfterMillis(3'600'000);
    OpimCOptions o;
    o.seed = 7;
    o.num_threads = 1;
    o.control = &control;
    return RunOpimC(g, DiffusionModel::kIndependentCascade, 5, 0.3, 0.01, o);
  };
  OpimCResult a = run();
  OpimCResult b = run();
  EXPECT_EQ(a.guardrails.stop_reason, StopReason::kDeadline);
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_EQ(a.alpha, b.alpha);
  EXPECT_EQ(a.num_rr_sets, b.num_rr_sets);
  EXPECT_EQ(a.iterations, b.iterations);
}

}  // namespace
}  // namespace opim

#else  // !OPIM_FAULT_INJECT_ENABLED

TEST(FaultInjectionTest, CompiledOutInThisConfiguration) {
  // OPIM_FAULT_POINT must be the literal constant false here; the suite's
  // real assertions live in the OPIM_FAULT_INJECT=ON configuration.
  static_assert(!OPIM_FAULT_POINT("any.site"),
                "fault points must fold away when injection is disabled");
  SUCCEED();
}

#endif  // OPIM_FAULT_INJECT_ENABLED
