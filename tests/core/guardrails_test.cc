// Guardrail behavior of RunOpimC and OnlineMaximizer: every stop reason
// yields a valid anytime answer (size-k seeds, finite α), untripped
// controlled runs are byte-identical to uncontrolled runs, and the memory
// budget reproduces the uninterrupted run's iteration-1 certificate
// deterministically.

#include <gtest/gtest.h>

#include <cmath>

#include "core/online_maximizer.h"
#include "core/opim_c.h"
#include "gen/generators.h"
#include "support/run_control.h"

namespace opim {
namespace {

constexpr double kEps = 0.3;
constexpr double kDelta = 0.01;

Graph TestGraph() { return GenerateBarabasiAlbert(500, 5); }

void ExpectValidAnytimeResult(const OpimCResult& r, uint32_t k,
                              StopReason want) {
  EXPECT_EQ(r.guardrails.stop_reason, want);
  EXPECT_EQ(r.seeds.size(), k);
  EXPECT_TRUE(std::isfinite(r.alpha));
  EXPECT_GE(r.alpha, 0.0);
  EXPECT_GE(r.iterations, 1u);
  ASSERT_EQ(r.trace.size(), r.iterations);
  EXPECT_GT(r.trace.back().sigma_upper, 0.0);
  EXPECT_GT(r.trace.back().rr_bytes, 0u);
  if (want != StopReason::kConverged) {
    EXPECT_GE(r.guardrails.stop_latency_seconds, 0.0);
  }
}

TEST(OpimCGuardrailsTest, UntrippedControlIsByteIdenticalToUncontrolled) {
  Graph g = TestGraph();
  OpimCOptions plain;
  plain.seed = 7;
  OpimCResult a = RunOpimC(g, DiffusionModel::kIndependentCascade, 5, kEps,
                           kDelta, plain);

  RunControl control;
  control.SetDeadlineAfterMillis(3'600'000);  // generous: never trips
  OpimCOptions guarded = plain;
  guarded.control = &control;
  OpimCResult b = RunOpimC(g, DiffusionModel::kIndependentCascade, 5, kEps,
                           kDelta, guarded);

  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_EQ(a.alpha, b.alpha);
  EXPECT_EQ(a.num_rr_sets, b.num_rr_sets);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(b.guardrails.stop_reason, StopReason::kConverged);
  EXPECT_TRUE(b.guardrails.had_deadline);
  EXPECT_GT(b.guardrails.deadline_slack_seconds, 0.0);
  EXPECT_GT(b.guardrails.peak_rr_bytes, 0u);
}

TEST(OpimCGuardrailsTest, ExpiredDeadlineStillReturnsCertifiedSeeds) {
  Graph g = TestGraph();
  RunControl control;
  control.SetDeadlineAfterMillis(0);  // expired before the run starts
  OpimCOptions o;
  o.seed = 7;
  o.control = &control;
  OpimCResult r = RunOpimC(g, DiffusionModel::kIndependentCascade, 5, kEps,
                           kDelta, o);
  ExpectValidAnytimeResult(r, 5, StopReason::kDeadline);
  EXPECT_EQ(r.iterations, 1u);  // degraded at the first safe point
  EXPECT_LE(r.guardrails.deadline_slack_seconds, 0.0);
}

TEST(OpimCGuardrailsTest, TinyMemoryBudgetDegradesGracefully) {
  Graph g = TestGraph();
  RunControl control;
  control.SetMemoryBudgetBytes(1);  // trips at the first footprint report
  OpimCOptions o;
  o.seed = 7;
  o.control = &control;
  OpimCResult r = RunOpimC(g, DiffusionModel::kIndependentCascade, 5, kEps,
                           kDelta, o);
  ExpectValidAnytimeResult(r, 5, StopReason::kMemoryBudget);
  EXPECT_EQ(r.guardrails.memory_budget_bytes, 1u);
  EXPECT_GE(r.guardrails.peak_rr_bytes, 1u);
}

TEST(OpimCGuardrailsTest, PreCancelledRunStillAnswers) {
  Graph g = TestGraph();
  RunControl control;
  control.RequestCancel();
  OpimCOptions o;
  o.seed = 7;
  o.control = &control;
  OpimCResult r = RunOpimC(g, DiffusionModel::kLinearThreshold, 3, kEps,
                           kDelta, o);
  ExpectValidAnytimeResult(r, 3, StopReason::kCancelled);
}

TEST(OpimCGuardrailsTest,
     MemoryBudgetReproducesUninterruptedIterationOneCertificate) {
  // The acceptance test for graceful degradation: run once without
  // guardrails, then arm a budget equal to the footprint the first
  // iteration reported. The boundary poll trips at iteration 1 (budget
  // "exhausted when reached"), and because generation-time estimates stay
  // below the exact post-ingest footprint, the interrupted run generates
  // exactly the same θ0 pools — so seeds and α must match the
  // uninterrupted run's iteration-1 trace entry bit-for-bit.
  Graph g = TestGraph();
  OpimCOptions plain;
  plain.seed = 11;
  OpimCResult full = RunOpimC(g, DiffusionModel::kIndependentCascade, 5,
                              0.1, kDelta, plain);
  ASSERT_GE(full.iterations, 2u)
      << "need a multi-iteration run for this test; loosen eps";

  RunControl control;
  control.SetMemoryBudgetBytes(full.trace[0].rr_bytes);
  OpimCOptions guarded = plain;
  guarded.control = &control;
  OpimCResult cut = RunOpimC(g, DiffusionModel::kIndependentCascade, 5, 0.1,
                             kDelta, guarded);

  EXPECT_EQ(cut.guardrails.stop_reason, StopReason::kMemoryBudget);
  EXPECT_EQ(cut.iterations, 1u);
  EXPECT_EQ(cut.seeds.size(), 5u);
  EXPECT_EQ(cut.alpha, full.trace[0].alpha);
  EXPECT_EQ(cut.trace[0].theta1, full.trace[0].theta1);
  EXPECT_EQ(cut.trace[0].sigma_lower, full.trace[0].sigma_lower);
  EXPECT_EQ(cut.trace[0].sigma_upper, full.trace[0].sigma_upper);
  EXPECT_EQ(cut.trace[0].rr_bytes, full.trace[0].rr_bytes);
}

TEST(OpimCGuardrailsTest, ParallelRunHonorsGuardrails) {
  Graph g = TestGraph();
  RunControl control;
  control.SetDeadlineAfterMillis(0);
  OpimCOptions o;
  o.seed = 7;
  o.num_threads = 4;
  o.control = &control;
  OpimCResult r = RunOpimC(g, DiffusionModel::kIndependentCascade, 5, kEps,
                           kDelta, o);
  ExpectValidAnytimeResult(r, 5, StopReason::kDeadline);
}

TEST(OnlineGuardrailsTest, RunUntilTargetStopsWhenCancelled) {
  Graph g = TestGraph();
  OnlineMaximizer om(g, DiffusionModel::kIndependentCascade, 5, 0.01, 3);
  RunControl control;
  om.set_run_control(&control);
  control.RequestCancel();
  // Without the guardrail this target would need many batches; cancelled
  // up front, the driver must return after its first (floored) advance.
  OnlineSnapshot snap =
      om.RunUntilTarget(BoundKind::kImproved, 0.99, 1000, 0);
  EXPECT_EQ(snap.seeds.size(), 5u);
  EXPECT_TRUE(std::isfinite(snap.alpha));
  EXPECT_GT(snap.theta1, 0u);
  EXPECT_GT(snap.theta2, 0u);
  EXPECT_LE(om.num_rr_sets(), 1000u);
}

TEST(OnlineGuardrailsTest, SerialAdvanceStopsEarlyAfterTrip) {
  Graph g = TestGraph();
  OnlineMaximizer om(g, DiffusionModel::kIndependentCascade, 5, 0.01, 3);
  RunControl control;
  control.SetMemoryBudgetBytes(1);
  om.set_run_control(&control);
  om.Advance(100'000);
  // Tripped at the first poll with a non-empty floor: far fewer sets than
  // requested, but enough for a valid Query on both pools.
  EXPECT_LT(om.num_rr_sets(), 100'000u);
  EXPECT_GT(om.r1().num_sets(), 0u);
  EXPECT_GT(om.r2().num_sets(), 0u);
  OnlineSnapshot snap = om.Query(BoundKind::kImproved);
  EXPECT_EQ(snap.seeds.size(), 5u);
  EXPECT_TRUE(std::isfinite(snap.alpha));
}

TEST(OnlineGuardrailsTest, ParallelAdvanceStopsEarlyAfterTrip) {
  Graph g = TestGraph();
  OnlineMaximizer om(g, DiffusionModel::kIndependentCascade, 5, 0.01, 3);
  RunControl control;
  control.RequestCancel();
  om.set_run_control(&control);
  om.AdvanceParallel(100'000, 4);
  EXPECT_LT(om.num_rr_sets(), 100'000u);
  EXPECT_GT(om.r1().num_sets(), 0u);
  EXPECT_GT(om.r2().num_sets(), 0u);
  OnlineSnapshot snap = om.Query(BoundKind::kImproved);
  EXPECT_EQ(snap.seeds.size(), 5u);
  EXPECT_TRUE(std::isfinite(snap.alpha));
}

TEST(OnlineGuardrailsTest, DetachedControlRestoresNormalBehavior) {
  Graph g = TestGraph();
  OnlineMaximizer om(g, DiffusionModel::kIndependentCascade, 5, 0.01, 3);
  RunControl control;
  control.RequestCancel();
  om.set_run_control(&control);
  om.set_run_control(nullptr);  // detach: guardrails no longer consulted
  om.Advance(2000);
  EXPECT_EQ(om.num_rr_sets(), 2000u);
}

}  // namespace
}  // namespace opim
