#include "core/opim_c.h"

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/mc_greedy.h"
#include "gen/generators.h"
#include "support/math_util.h"

namespace opim {
namespace {

TEST(OpimCFormulaTest, ThetaMaxPositiveAndScalesWithEps) {
  double loose = OpimCThetaMax(10000, 50, 0.5, 0.01);
  double tight = OpimCThetaMax(10000, 50, 0.05, 0.01);
  EXPECT_GT(loose, 0.0);
  // θ_max ~ ε^-2: a 10x smaller ε needs 100x more samples.
  EXPECT_NEAR(tight / loose, 100.0, 1.0);
}

TEST(OpimCFormulaTest, Theta0IsThetaMaxScaled) {
  const uint32_t n = 4096, k = 10;
  const double eps = 0.1, delta = 0.01;
  EXPECT_NEAR(OpimCTheta0(n, k, eps, delta),
              OpimCThetaMax(n, k, eps, delta) * eps * eps * k / n, 1e-6);
}

TEST(OpimCFormulaTest, ThetaMaxGrowsWithK) {
  // ln C(n,k) grows ~ k ln n while the denominator has k; net effect for
  // moderate k is roughly flat-to-growing numerator — just check finiteness
  // and positivity across k.
  for (uint32_t k : {1u, 10u, 100u, 1000u}) {
    double v = OpimCThetaMax(100000, k, 0.1, 0.001);
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GT(v, 0.0);
  }
}

class OpimCModelTest : public ::testing::TestWithParam<DiffusionModel> {};

TEST_P(OpimCModelTest, ReturnsKSeedsAndMeetsTarget) {
  Graph g = GenerateBarabasiAlbert(500, 5);
  const double eps = 0.3, delta = 0.01;
  OpimCResult r = RunOpimC(g, GetParam(), 5, eps, delta);
  EXPECT_EQ(r.seeds.size(), 5u);
  EXPECT_GE(r.iterations, 1u);
  EXPECT_LE(r.iterations, r.i_max);
  if (r.iterations < r.i_max) {
    // Early stop requires the bound to have cleared the target.
    EXPECT_GE(r.alpha, kOneMinusInvE - eps);
  }
  EXPECT_EQ(r.trace.size(), r.iterations);
}

TEST_P(OpimCModelTest, DeterministicForSeed) {
  Graph g = GenerateBarabasiAlbert(300, 4);
  OpimCOptions o;
  o.seed = 42;
  OpimCResult a = RunOpimC(g, GetParam(), 4, 0.2, 0.05, o);
  OpimCResult b = RunOpimC(g, GetParam(), 4, 0.2, 0.05, o);
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_EQ(a.num_rr_sets, b.num_rr_sets);
  EXPECT_EQ(a.alpha, b.alpha);
}

TEST_P(OpimCModelTest, ImprovedBoundNeedsNoMoreRRSetsThanBasic) {
  // σ̂_u <= σ_u pointwise, so with the same stream the improved stopping
  // rule can only fire earlier (same seed = same RR sets per iteration).
  Graph g = GenerateBarabasiAlbert(600, 6);
  OpimCOptions basic, improved;
  basic.bound = BoundKind::kBasic;
  improved.bound = BoundKind::kImproved;
  basic.seed = improved.seed = 9;
  OpimCResult rb = RunOpimC(g, GetParam(), 10, 0.15, 0.01, basic);
  OpimCResult ri = RunOpimC(g, GetParam(), 10, 0.15, 0.01, improved);
  EXPECT_LE(ri.iterations, rb.iterations);
  EXPECT_LE(ri.num_rr_sets, rb.num_rr_sets);
}

INSTANTIATE_TEST_SUITE_P(BothModels, OpimCModelTest,
                         ::testing::Values(
                             DiffusionModel::kIndependentCascade,
                             DiffusionModel::kLinearThreshold),
                         [](const auto& info) {
                           return DiffusionModelName(info.param);
                         });

TEST(OpimCTest, SpreadMatchesMcGreedyReference) {
  // The approximation contract in practice: OPIM-C's seeds should achieve
  // a spread close to the (near-optimal) MC-greedy reference.
  Graph g = GenerateBarabasiAlbert(200, 4);
  const DiffusionModel model = DiffusionModel::kIndependentCascade;
  const uint32_t k = 4;
  OpimCResult r = RunOpimC(g, model, k, 0.1, 0.05);
  std::vector<NodeId> reference = SelectMcGreedy(g, model, k, 2000, 3);

  SpreadEstimator est(g, model, 2);
  double ours = est.Estimate(r.seeds, 40000, 4);
  double ref = est.Estimate(reference, 40000, 4);
  EXPECT_GE(ours, 0.9 * ref) << "ours " << ours << " ref " << ref;
}

TEST(OpimCTest, TraceAlphasRecorded) {
  Graph g = GenerateBarabasiAlbert(400, 5);
  OpimCResult r =
      RunOpimC(g, DiffusionModel::kLinearThreshold, 5, 0.25, 0.05);
  ASSERT_FALSE(r.trace.empty());
  for (size_t i = 0; i < r.trace.size(); ++i) {
    EXPECT_GT(r.trace[i].theta1, 0u);
    EXPECT_GE(r.trace[i].alpha, 0.0);
    EXPECT_LE(r.trace[i].alpha, 1.0);
    if (i > 0) {
      EXPECT_EQ(r.trace[i].theta1, r.trace[i - 1].theta1 * 2)
          << "pool must double each iteration";
    }
  }
  EXPECT_EQ(r.trace.back().alpha, r.alpha);
}

TEST(OpimCTest, TinyEpsStillTerminates) {
  // Small graph + strict eps: must finish via early bound satisfaction,
  // not run to θ_max.
  Graph g = GenerateBarabasiAlbert(150, 4);
  OpimCResult r =
      RunOpimC(g, DiffusionModel::kIndependentCascade, 2, 0.05, 0.05);
  EXPECT_EQ(r.seeds.size(), 2u);
  EXPECT_GE(r.alpha, kOneMinusInvE - 0.05);
}

TEST(OpimCTest, KEqualsNDegenerate) {
  Graph g = GenerateBarabasiAlbert(20, 2);
  OpimCResult r =
      RunOpimC(g, DiffusionModel::kIndependentCascade, 20, 0.3, 0.1);
  EXPECT_EQ(r.seeds.size(), 20u);  // every node selected
}

}  // namespace
}  // namespace opim
