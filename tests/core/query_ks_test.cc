// Engine-level coverage for prefix queries (OpimCOptions::query_ks) and
// the incremental-selection differential. One RunOpimC call with
// query_ks = {1, k/2, k} must answer every requested size from its final
// iteration's SeedTrace — seed prefixes of the returned set, α(k)
// bitwise equal to the run's own certificate — on both diffusion models,
// and the whole result (queries included) must be bit-identical across
// incremental_selection on/off and eager/pipelined schedules: the
// persistent SelectionState and the trace recording are execution
// accelerators, never behavior.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/opim_c.h"
#include "harness/datasets.h"

namespace opim {
namespace {

constexpr uint32_t kK = 10;
constexpr double kEps = 0.1;
constexpr double kDelta = 0.01;

Graph TestGraph() { return MakeTinyTestGraph(512, 3); }

std::vector<uint32_t> QueryKs() { return {1, kK / 2, kK}; }

void ExpectSameRunWithQueries(const OpimCResult& a, const OpimCResult& b) {
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_EQ(a.alpha, b.alpha);  // bitwise, not approximate
  EXPECT_EQ(a.num_rr_sets, b.num_rr_sets);
  EXPECT_EQ(a.iterations, b.iterations);
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(a.queries[i].k, b.queries[i].k);
    EXPECT_EQ(a.queries[i].alpha, b.queries[i].alpha);
    EXPECT_EQ(a.queries[i].sigma_lower, b.queries[i].sigma_lower);
    EXPECT_EQ(a.queries[i].sigma_upper, b.queries[i].sigma_upper);
    EXPECT_EQ(a.queries[i].seeds, b.queries[i].seeds);
  }
}

TEST(QueryKsTest, AnswersEveryRequestedSizeOnBothModels) {
  Graph g = TestGraph();
  for (const DiffusionModel model : {DiffusionModel::kIndependentCascade,
                                     DiffusionModel::kLinearThreshold}) {
    OpimCOptions o;
    o.seed = 7;
    o.num_threads = 1;
    o.query_ks = QueryKs();
    const OpimCResult r = RunOpimC(g, model, kK, kEps, kDelta, o);
    ASSERT_EQ(r.queries.size(), o.query_ks.size());
    for (size_t i = 0; i < r.queries.size(); ++i) {
      const OpimCQueryAnswer& q = r.queries[i];
      EXPECT_EQ(q.k, o.query_ks[i]);
      // Greedy prefix-consistency: the k'-answer IS the k-run's prefix.
      ASSERT_EQ(q.seeds.size(), q.k);
      for (uint32_t j = 0; j < q.k; ++j) {
        EXPECT_EQ(q.seeds[j], r.seeds[j]) << "k'=" << q.k << " pos " << j;
      }
      EXPECT_GE(q.sigma_lower, 0.0);
      EXPECT_LE(q.sigma_lower, q.sigma_upper);
      EXPECT_GE(q.alpha, 0.0);
      EXPECT_LE(q.alpha, 1.0);
    }
    // The full-size query re-derives the run's own certificate from the
    // trace: bitwise-equal α and bounds, proving zero drift between the
    // stopping rule's arithmetic and the query path.
    const OpimCQueryAnswer& full = r.queries.back();
    EXPECT_EQ(full.k, kK);
    EXPECT_EQ(full.alpha, r.alpha);
    EXPECT_EQ(full.seeds, r.seeds);
    // Monotone k': a larger prefix never lowers σ_l (more seeds cover
    // more judge sets).
    for (size_t i = 1; i < r.queries.size(); ++i) {
      EXPECT_GE(r.queries[i].sigma_lower, r.queries[i - 1].sigma_lower);
    }
  }
}

TEST(QueryKsTest, QueriesAgreeAcrossBoundKinds) {
  // kImproved and kLeskovec both produce prefix-complete traces; their
  // query answers differ only through σ_upper. kBasic asks for no trace
  // and must answer queries through the basic bound instead.
  Graph g = TestGraph();
  for (const BoundKind bound :
       {BoundKind::kImproved, BoundKind::kLeskovec, BoundKind::kBasic}) {
    OpimCOptions o;
    o.seed = 11;
    o.num_threads = 1;
    o.bound = bound;
    o.query_ks = QueryKs();
    const OpimCResult r =
        RunOpimC(g, DiffusionModel::kIndependentCascade, kK, kEps, kDelta, o);
    ASSERT_EQ(r.queries.size(), o.query_ks.size());
    const OpimCQueryAnswer& full = r.queries.back();
    EXPECT_EQ(full.alpha, r.alpha) << BoundKindName(bound);
    EXPECT_EQ(full.seeds, r.seeds) << BoundKindName(bound);
  }
}

TEST(QueryKsTest, IncrementalSelectionIsBitIdenticalEager) {
  Graph g = TestGraph();
  for (const DiffusionModel model : {DiffusionModel::kIndependentCascade,
                                     DiffusionModel::kLinearThreshold}) {
    OpimCOptions on;
    on.seed = 3;
    on.num_threads = 1;
    on.query_ks = QueryKs();
    on.incremental_selection = true;
    OpimCOptions off = on;
    off.incremental_selection = false;
    const OpimCResult a = RunOpimC(g, model, kK, kEps, kDelta, on);
    const OpimCResult b = RunOpimC(g, model, kK, kEps, kDelta, off);
    ExpectSameRunWithQueries(a, b);
  }
}

TEST(QueryKsTest, IncrementalSelectionIsBitIdenticalPipelined) {
  // 4 threads, speculative sampling on: the warm-started selection must
  // not perturb the speculation schedule (after_initial_gains fires at
  // the same point on both paths), so the whole run stays identical.
  Graph g = TestGraph();
  OpimCOptions on;
  on.seed = 5;
  on.num_threads = 4;
  on.pipeline = true;
  on.query_ks = QueryKs();
  on.incremental_selection = true;
  OpimCOptions off = on;
  off.incremental_selection = false;
  const OpimCResult a =
      RunOpimC(g, DiffusionModel::kIndependentCascade, kK, kEps, kDelta, on);
  const OpimCResult b =
      RunOpimC(g, DiffusionModel::kIndependentCascade, kK, kEps, kDelta, off);
  ExpectSameRunWithQueries(a, b);

  // And the pipelined run answers exactly what the eager schedule
  // answers. Determinism is per (seed, num_threads) — the RR stream
  // depends on the thread count — so only the schedule flips here.
  OpimCOptions eager = on;
  eager.pipeline = false;
  const OpimCResult c =
      RunOpimC(g, DiffusionModel::kIndependentCascade, kK, kEps, kDelta,
               eager);
  ExpectSameRunWithQueries(a, c);
}

TEST(QueryKsTest, NoQueriesMeansNoQuerySection) {
  Graph g = TestGraph();
  OpimCOptions o;
  o.seed = 7;
  o.num_threads = 1;
  const OpimCResult r =
      RunOpimC(g, DiffusionModel::kIndependentCascade, kK, kEps, kDelta, o);
  EXPECT_TRUE(r.queries.empty());
}

}  // namespace
}  // namespace opim
