// Contract enforcement: invalid arguments must abort loudly via
// OPIM_CHECK (a randomized algorithm silently fed garbage produces
// plausible-looking wrong answers, which is worse than a crash).

#include <gtest/gtest.h>

#include "core/online_maximizer.h"
#include "core/opim_c.h"
#include "gen/generators.h"
#include "rrset/rr_collection.h"

namespace opim {
namespace {

using ContractDeathTest = ::testing::Test;

TEST(ContractDeathTest, OnlineMaximizerRejectsZeroK) {
  Graph g = GeneratePath(4);
  EXPECT_DEATH(
      OnlineMaximizer(g, DiffusionModel::kIndependentCascade, 0, 0.1),
      "OPIM_CHECK");
}

TEST(ContractDeathTest, OnlineMaximizerRejectsKAboveN) {
  Graph g = GeneratePath(4);
  EXPECT_DEATH(
      OnlineMaximizer(g, DiffusionModel::kIndependentCascade, 5, 0.1),
      "OPIM_CHECK");
}

TEST(ContractDeathTest, OnlineMaximizerRejectsBadDelta) {
  Graph g = GeneratePath(4);
  EXPECT_DEATH(
      OnlineMaximizer(g, DiffusionModel::kIndependentCascade, 2, 0.0),
      "OPIM_CHECK");
  EXPECT_DEATH(
      OnlineMaximizer(g, DiffusionModel::kIndependentCascade, 2, 1.0),
      "OPIM_CHECK");
}

TEST(ContractDeathTest, QueryBeforeAdvanceAborts) {
  Graph g = GeneratePath(4);
  OnlineMaximizer om(g, DiffusionModel::kIndependentCascade, 2, 0.1);
  EXPECT_DEATH(om.Query(BoundKind::kBasic), "Advance");
}

TEST(ContractDeathTest, OpimCRejectsBadEps) {
  Graph g = GeneratePath(4);
  EXPECT_DEATH(
      RunOpimC(g, DiffusionModel::kIndependentCascade, 2, 0.0, 0.1),
      "OPIM_CHECK");
  EXPECT_DEATH(
      RunOpimC(g, DiffusionModel::kIndependentCascade, 2, 1.0, 0.1),
      "OPIM_CHECK");
}

TEST(ContractDeathTest, WeightedRejectsWrongLengthOrAllZero) {
  Graph g = GeneratePath(4);
  std::vector<double> short_weights = {1.0, 1.0};
  EXPECT_DEATH(OnlineMaximizer(g, DiffusionModel::kIndependentCascade, 2,
                               0.1, short_weights, 1),
               "OPIM_CHECK");
  std::vector<double> zero_weights(4, 0.0);
  EXPECT_DEATH(OnlineMaximizer(g, DiffusionModel::kIndependentCascade, 2,
                               0.1, zero_weights, 1),
               "zero");
}

TEST(ContractDeathTest, CollectionRejectsOutOfRangeNode) {
  RRCollection rr(3);
  std::vector<NodeId> bad = {7};
  EXPECT_DEATH(rr.AddSet(bad, 1), "OPIM_CHECK");
}

TEST(ContractDeathTest, GraphBuilderRejectsBadEndpointsAndProbs) {
  GraphBuilder b(2);
  EXPECT_DEATH(b.AddEdge(0, 5, 0.5), "OPIM_CHECK");
  EXPECT_DEATH(b.AddEdge(0, 1, 1.5), "probability");
}

}  // namespace
}  // namespace opim
