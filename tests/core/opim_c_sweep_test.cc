// Parameterized OPIM-C sweep over (ε, bound kind, model): every
// combination must terminate, return k seeds, and — whenever it stopped
// via the bound rather than i_max — certify at least 1 - 1/e - ε.

#include <gtest/gtest.h>

#include <tuple>

#include "core/opim_c.h"
#include "gen/generators.h"
#include "support/math_util.h"

namespace opim {
namespace {

using SweepParam = std::tuple<double /*eps*/, BoundKind, DiffusionModel>;

class OpimCSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(OpimCSweepTest, TerminatesWithValidCertificate) {
  auto [eps, bound, model] = GetParam();
  Graph g = GenerateBarabasiAlbert(400, 5, /*undirected=*/false,
                                   {.seed = 11});
  OpimCOptions o;
  o.bound = bound;
  o.seed = 13;
  OpimCResult r = RunOpimC(g, model, 8, eps, 0.05, o);
  EXPECT_EQ(r.seeds.size(), 8u);
  EXPECT_GE(r.iterations, 1u);
  EXPECT_LE(r.iterations, r.i_max);
  if (r.iterations < r.i_max) {
    EXPECT_GE(r.alpha, kOneMinusInvE - eps)
        << "early stop without meeting the target";
  }
  // Iterations and trace agree.
  EXPECT_EQ(r.trace.size(), r.iterations);
  EXPECT_DOUBLE_EQ(r.trace.back().alpha, r.alpha);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OpimCSweepTest,
    ::testing::Combine(
        ::testing::Values(0.4, 0.2, 0.1),
        ::testing::Values(BoundKind::kBasic, BoundKind::kImproved,
                          BoundKind::kLeskovec),
        ::testing::Values(DiffusionModel::kIndependentCascade,
                          DiffusionModel::kLinearThreshold)),
    [](const auto& info) {
      // NOTE: no structured bindings here — the comma-separated binding
      // list would be split by the INSTANTIATE macro's preprocessor.
      const double eps = std::get<0>(info.param);
      const BoundKind bound = std::get<1>(info.param);
      std::string name = DiffusionModelName(std::get<2>(info.param));
      name += bound == BoundKind::kBasic      ? "_basic"
              : bound == BoundKind::kImproved ? "_improved"
                                              : "_leskovec";
      name += "_eps";
      name += std::to_string(static_cast<int>(eps * 100));
      return name;
    });

}  // namespace
}  // namespace opim
