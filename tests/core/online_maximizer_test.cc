#include "core/online_maximizer.h"

#include <gtest/gtest.h>

#include "baselines/mc_greedy.h"
#include "gen/generators.h"

namespace opim {
namespace {

class OnlineMaximizerModelTest
    : public ::testing::TestWithParam<DiffusionModel> {};

TEST_P(OnlineMaximizerModelTest, PoolsStayBalanced) {
  Graph g = GenerateBarabasiAlbert(200, 4);
  OnlineMaximizer om(g, GetParam(), 5, 0.05, 1);
  om.Advance(101);  // odd count
  EXPECT_EQ(om.num_rr_sets(), 101u);
  uint64_t t1 = om.r1().num_sets(), t2 = om.r2().num_sets();
  EXPECT_LE(t1 > t2 ? t1 - t2 : t2 - t1, 1u);
  om.Advance(101);
  t1 = om.r1().num_sets();
  t2 = om.r2().num_sets();
  EXPECT_EQ(t1, t2);  // alternation evens out
}

TEST_P(OnlineMaximizerModelTest, QueryReturnsKSeeds) {
  Graph g = GenerateBarabasiAlbert(300, 4);
  OnlineMaximizer om(g, GetParam(), 7, 0.05, 2);
  om.Advance(2000);
  OnlineSnapshot snap = om.Query(BoundKind::kImproved);
  EXPECT_EQ(snap.seeds.size(), 7u);
  EXPECT_GE(snap.alpha, 0.0);
  EXPECT_LE(snap.alpha, 1.0);
  EXPECT_GT(snap.sigma_lower, 0.0);
  EXPECT_GT(snap.sigma_upper, snap.sigma_lower);
  EXPECT_EQ(snap.theta1 + snap.theta2, 2000u);
}

TEST_P(OnlineMaximizerModelTest, ImprovedBoundDominatesBasicAlways) {
  // Lemma 5.2 makes this a deterministic inequality, not a statistical one.
  Graph g = GenerateErdosRenyi(400, 2400);
  OnlineMaximizer om(g, GetParam(), 10, 0.02, 3);
  for (int round = 0; round < 6; ++round) {
    om.Advance(500);
    OnlineSnapshotAll snap = om.QueryAll();
    EXPECT_GE(snap.alpha_improved, snap.alpha_basic - 1e-12)
        << "round " << round;
  }
}

TEST_P(OnlineMaximizerModelTest, AlphaImprovesWithMoreSamples) {
  Graph g = GenerateBarabasiAlbert(500, 6);
  OnlineMaximizer om(g, GetParam(), 10, 0.02, 4);
  om.Advance(500);
  double early = om.QueryAll().alpha_improved;
  om.Advance(31500);  // 64x more
  double late = om.QueryAll().alpha_improved;
  EXPECT_GT(late, early);
}

TEST_P(OnlineMaximizerModelTest, DeterministicForSeed) {
  Graph g = GenerateBarabasiAlbert(200, 4);
  OnlineMaximizer a(g, GetParam(), 5, 0.05, 11);
  OnlineMaximizer b(g, GetParam(), 5, 0.05, 11);
  a.Advance(1000);
  b.Advance(1000);
  OnlineSnapshot sa = a.Query(BoundKind::kBasic);
  OnlineSnapshot sb = b.Query(BoundKind::kBasic);
  EXPECT_EQ(sa.seeds, sb.seeds);
  EXPECT_EQ(sa.alpha, sb.alpha);
}

INSTANTIATE_TEST_SUITE_P(BothModels, OnlineMaximizerModelTest,
                         ::testing::Values(
                             DiffusionModel::kIndependentCascade,
                             DiffusionModel::kLinearThreshold),
                         [](const auto& info) {
                           return DiffusionModelName(info.param);
                         });

TEST(OnlineMaximizerTest, GuaranteeIsStatisticallyValid) {
  // The contract: σ(S*) >= α·σ(S°) w.p. 1-δ. We validate the two halves
  // separately on a small graph where MC estimates are sharp:
  //   (a) σ_l <= σ(S*) (true spread of the returned seeds)
  //   (b) σ_u >= σ(S_mc) (spread of a near-optimal reference seed set)
  Graph g = GenerateBarabasiAlbert(150, 3);
  const DiffusionModel model = DiffusionModel::kIndependentCascade;
  const uint32_t k = 3;

  OnlineMaximizer om(g, model, k, /*delta=*/0.01, 5);
  om.Advance(20000);
  OnlineSnapshot snap = om.Query(BoundKind::kImproved);

  SpreadEstimator est(g, model, 2);
  double true_spread = est.Estimate(snap.seeds, 60000, 6);
  EXPECT_LE(snap.sigma_lower, true_spread * 1.02 + 0.5) << "(a) violated";

  std::vector<NodeId> reference = SelectMcGreedy(g, model, k, 2000, 7);
  double reference_spread = est.Estimate(reference, 60000, 8);
  EXPECT_GE(snap.sigma_upper, reference_spread * 0.98 - 0.5)
      << "(b) violated";

  // And the advertised inequality end-to-end.
  EXPECT_GE(true_spread, snap.alpha * reference_spread * 0.95);
}

TEST(OnlineMaximizerTest, HighSampleAlphaIsStrong) {
  // The paper reports α ~ 0.9 at large sample counts; at 60k RR sets on a
  // small graph we should already clear 0.7 comfortably.
  Graph g = GenerateBarabasiAlbert(300, 5);
  OnlineMaximizer om(g, DiffusionModel::kIndependentCascade, 10, 0.01, 6);
  om.Advance(60000);
  EXPECT_GT(om.QueryAll().alpha_improved, 0.7);
}

TEST(OnlineMaximizerTest, EdgesExaminedAccumulates) {
  Graph g = GenerateBarabasiAlbert(100, 4);
  OnlineMaximizer om(g, DiffusionModel::kIndependentCascade, 2, 0.1, 7);
  om.Advance(10);
  uint64_t e10 = om.edges_examined();
  EXPECT_GT(e10, 0u);
  om.Advance(10);
  EXPECT_GT(om.edges_examined(), e10);
}

TEST(OnlineMaximizerTest, KEqualsOneWorks) {
  Graph g = GenerateStar(50);  // hub 0 reaches everyone
  GraphBuilder b(50);
  for (NodeId v = 1; v < 50; ++v) b.AddEdge(0, v, 1.0);
  Graph star = b.Build();
  OnlineMaximizer om(star, DiffusionModel::kIndependentCascade, 1, 0.05, 8);
  om.Advance(4000);
  OnlineSnapshot snap = om.Query(BoundKind::kImproved);
  ASSERT_EQ(snap.seeds.size(), 1u);
  EXPECT_EQ(snap.seeds[0], 0u);  // the hub is unambiguous
  EXPECT_GT(snap.alpha, 0.5);
}

}  // namespace
}  // namespace opim
