// Node-weighted influence maximization: importance-weighted RR roots turn
// every estimator/bound into statements about σ_w(S) = Σ_v w_v·Pr[S
// activates v]. These tests pin the weighted machinery end to end.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/online_maximizer.h"
#include "core/opim_c.h"
#include "gen/generators.h"
#include "rrset/rr_collection.h"
#include "rrset/rr_sampler.h"

namespace opim {
namespace {

/// Two disjoint stars with certain edges:
///   hub A = 0 -> leaves 1..10   (10 low-weight leaves)
///   hub B = 11 -> leaves 12..14 (3 high-weight leaves)
/// Unit-weight optimum for k = 1 is hub A (spread 11); with leaf weights
/// 100 on B's side the weighted optimum is hub B (σ_w = 300 + w_B).
struct TwoStars {
  Graph graph;
  std::vector<double> weights;
  static constexpr NodeId kHubA = 0;
  static constexpr NodeId kHubB = 11;
};

TwoStars MakeTwoStars() {
  GraphBuilder b(15);
  for (NodeId v = 1; v <= 10; ++v) b.AddEdge(0, v, 1.0);
  for (NodeId v = 12; v <= 14; ++v) b.AddEdge(11, v, 1.0);
  TwoStars out{b.Build(), std::vector<double>(15, 1.0)};
  for (NodeId v = 12; v <= 14; ++v) out.weights[v] = 100.0;
  return out;
}

TEST(WeightedSamplerTest, RootsFollowWeights) {
  GraphBuilder b(4);
  Graph g = b.Build();  // no edges: RR set == root
  std::vector<double> w = {1.0, 0.0, 3.0, 0.0};
  IcRRSampler sampler(g, w);
  Rng rng(1);
  std::vector<NodeId> out;
  int count0 = 0, count2 = 0;
  const int samples = 40000;
  for (int i = 0; i < samples; ++i) {
    sampler.SampleInto(rng, &out);
    ASSERT_EQ(out.size(), 1u);
    ASSERT_TRUE(out[0] == 0 || out[0] == 2) << "zero-weight root sampled";
    (out[0] == 0 ? count0 : count2) += 1;
  }
  EXPECT_NEAR(static_cast<double>(count0) / samples, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(count2) / samples, 0.75, 0.01);
}

TEST(WeightedSamplerTest, WeightedRisIdentityHolds) {
  // W·Pr[S ∩ R ≠ ∅] == σ_w(S): check against the weighted forward
  // estimator on a random graph with random weights.
  Graph g = GenerateErdosRenyi(120, 700);
  Rng wrng(2);
  std::vector<double> w(g.num_nodes());
  double total = 0.0;
  for (double& x : w) {
    x = wrng.UniformDouble() * 5.0;
    total += x;
  }

  auto sampler = MakeRRSampler(g, DiffusionModel::kIndependentCascade, w);
  Rng rng(3);
  RRCollection rr(g.num_nodes());
  sampler->Generate(&rr, 60000, rng);

  SpreadEstimator est(g, DiffusionModel::kIndependentCascade, 2);
  std::vector<NodeId> seeds = {0, 5, 9};
  double ris = static_cast<double>(rr.CoverageOf(seeds)) * total /
               rr.num_sets();
  double mc = est.EstimateWeighted(seeds, w, 60000, 4);
  EXPECT_NEAR(ris, mc, 0.12 * std::max(mc, 1.0));
}

TEST(WeightedEstimatorTest, UnitWeightsMatchUnweighted) {
  Graph g = GenerateBarabasiAlbert(150, 3);
  SpreadEstimator est(g, DiffusionModel::kLinearThreshold, 2);
  std::vector<double> unit(g.num_nodes(), 1.0);
  std::vector<NodeId> seeds = {0, 1};
  double a = est.Estimate(seeds, 30000, 5);
  double b = est.EstimateWeighted(seeds, unit, 30000, 5);
  EXPECT_NEAR(a, b, 0.05 * a);
}

TEST(WeightedOnlineMaximizerTest, PicksWeightedOptimum) {
  TwoStars ts = MakeTwoStars();
  OnlineMaximizer om(ts.graph, DiffusionModel::kIndependentCascade, 1, 0.05,
                     ts.weights, /*seed=*/6);
  om.Advance(6000);
  OnlineSnapshot snap = om.Query(BoundKind::kImproved);
  ASSERT_EQ(snap.seeds.size(), 1u);
  EXPECT_EQ(snap.seeds[0], TwoStars::kHubB);
  // σ_w(hub B) = 3·100 + 1 = 301 of W = 312; the bound should localize it.
  EXPECT_GT(snap.sigma_lower, 200.0);
  EXPECT_GT(snap.alpha, 0.5);
}

TEST(WeightedOnlineMaximizerTest, UnweightedPicksTheOtherHub) {
  TwoStars ts = MakeTwoStars();
  OnlineMaximizer om(ts.graph, DiffusionModel::kIndependentCascade, 1, 0.05,
                     /*seed=*/6);
  om.Advance(6000);
  OnlineSnapshot snap = om.Query(BoundKind::kImproved);
  EXPECT_EQ(snap.seeds[0], TwoStars::kHubA);
}

TEST(WeightedOnlineMaximizerTest, QueryAllUsesWeightedScale) {
  TwoStars ts = MakeTwoStars();
  OnlineMaximizer om(ts.graph, DiffusionModel::kIndependentCascade, 1, 0.05,
                     ts.weights, /*seed=*/8);
  om.Advance(6000);
  OnlineSnapshotAll snap = om.QueryAll();
  EXPECT_EQ(snap.seeds[0], TwoStars::kHubB);
  // All three bound variants certify on the weighted objective; Lemma 5.2
  // ordering is scale-invariant.
  EXPECT_GE(snap.alpha_improved, snap.alpha_basic - 1e-12);
  EXPECT_GT(snap.sigma_lower, 100.0);  // weighted σ, not node counts
}

TEST(WeightedOnlineMaximizerTest, SequentialQueriesWorkWeighted) {
  TwoStars ts = MakeTwoStars();
  OnlineMaximizer om(ts.graph, DiffusionModel::kIndependentCascade, 1, 0.05,
                     ts.weights, /*seed=*/9);
  om.Advance(4000);
  OnlineSnapshot s1 = om.QuerySequential(BoundKind::kImproved);
  OnlineSnapshot s2 = om.QuerySequential(BoundKind::kImproved);
  EXPECT_LE(s2.alpha, s1.alpha + 1e-12);
  EXPECT_EQ(om.sequential_queries_issued(), 2u);
}

TEST(WeightedOpimCTest, PicksWeightedOptimumWithGuarantee) {
  TwoStars ts = MakeTwoStars();
  OpimCOptions o;
  o.node_weights = ts.weights;
  OpimCResult r = RunOpimC(ts.graph, DiffusionModel::kIndependentCascade, 1,
                           0.2, 0.05, o);
  ASSERT_EQ(r.seeds.size(), 1u);
  EXPECT_EQ(r.seeds[0], TwoStars::kHubB);
  EXPECT_GE(r.alpha, 1.0 - 1.0 / std::exp(1.0) - 0.2);
}

TEST(WeightedOpimCTest, UnitWeightVectorMatchesDefaultFormulas) {
  // Explicit unit weights must not change the sample-size schedule.
  Graph g = GenerateBarabasiAlbert(300, 4);
  OpimCOptions unit;
  unit.node_weights.assign(g.num_nodes(), 1.0);
  unit.seed = 9;
  OpimCOptions none;
  none.seed = 9;
  OpimCResult a =
      RunOpimC(g, DiffusionModel::kIndependentCascade, 5, 0.2, 0.05, unit);
  OpimCResult b =
      RunOpimC(g, DiffusionModel::kIndependentCascade, 5, 0.2, 0.05, none);
  EXPECT_EQ(a.i_max, b.i_max);
  // Same schedule and same derived RR stream (weights only reroute root
  // sampling, and with unit weights the alias table is uniform).
  EXPECT_EQ(a.trace[0].theta1, b.trace[0].theta1);
}

}  // namespace
}  // namespace opim
