// End-to-end differential pin for the coverage-kernel dispatch: a full
// RunOpimC driven with the scalar kernels and with the AVX2 kernels must
// produce the identical seed set, α certificate, and iteration count.
// Combined with the unchanged golden pins (tests/regression), this closes
// the equivalence chain legacy-raw == compressed+scalar == compressed+SIMD.

#include <gtest/gtest.h>

#include "core/online_maximizer.h"
#include "core/opim_c.h"
#include "gen/generators.h"
#include "harness/datasets.h"
#include "rrset/cover_bitset.h"

namespace opim {
namespace {

/// Restores kAuto dispatch even when an assertion fails mid-test.
struct SimdModeGuard {
  ~SimdModeGuard() { SetCoverageSimdMode(SimdMode::kAuto); }
};

TEST(SimdDifferentialTest, OpimCIdenticalAcrossKernels) {
  if (!CoverageSimdAvailable()) {
    GTEST_SKIP() << "AVX2 kernels not compiled in or not supported";
  }
  SimdModeGuard guard;
  Graph g = MakeTinyTestGraph(256, 1);
  for (DiffusionModel model : {DiffusionModel::kIndependentCascade,
                               DiffusionModel::kLinearThreshold}) {
    OpimCOptions o;
    o.seed = 5;
    SetCoverageSimdMode(SimdMode::kScalar);
    OpimCResult scalar = RunOpimC(g, model, 3, 0.25, 0.05, o);
    SetCoverageSimdMode(SimdMode::kAvx2);
    OpimCResult simd = RunOpimC(g, model, 3, 0.25, 0.05, o);
    EXPECT_EQ(scalar.seeds, simd.seeds) << DiffusionModelName(model);
    EXPECT_DOUBLE_EQ(scalar.alpha, simd.alpha) << DiffusionModelName(model);
    EXPECT_EQ(scalar.iterations, simd.iterations);
    EXPECT_EQ(scalar.num_rr_sets, simd.num_rr_sets);
    EXPECT_EQ(scalar.rr_compressed_bytes, simd.rr_compressed_bytes);
  }
}

TEST(SimdDifferentialTest, OnlineSnapshotIdenticalAcrossKernels) {
  if (!CoverageSimdAvailable()) {
    GTEST_SKIP() << "AVX2 kernels not compiled in or not supported";
  }
  SimdModeGuard guard;
  Graph g = MakeTinyTestGraph(256, 1);
  SetCoverageSimdMode(SimdMode::kScalar);
  OnlineMaximizer a(g, DiffusionModel::kIndependentCascade, 4, 0.05, 99);
  a.Advance(4000);
  OnlineSnapshot sa = a.Query(BoundKind::kImproved);
  SetCoverageSimdMode(SimdMode::kAvx2);
  OnlineMaximizer b(g, DiffusionModel::kIndependentCascade, 4, 0.05, 99);
  b.Advance(4000);
  OnlineSnapshot sb = b.Query(BoundKind::kImproved);
  EXPECT_EQ(sa.seeds, sb.seeds);
  EXPECT_DOUBLE_EQ(sa.alpha, sb.alpha);
  EXPECT_EQ(sa.lambda1, sb.lambda1);
  EXPECT_EQ(sa.lambda2, sb.lambda2);
}

TEST(SimdDifferentialTest, LargerRandomGraphIdenticalSeeds) {
  if (!CoverageSimdAvailable()) {
    GTEST_SKIP() << "AVX2 kernels not compiled in or not supported";
  }
  SimdModeGuard guard;
  // Bigger pools so CELF actually runs long posting lists through the
  // 4-wide gather loops (the tiny graph mostly exercises tails).
  Graph g = GenerateBarabasiAlbert(3000, 6);
  OpimCOptions o;
  o.seed = 17;
  SetCoverageSimdMode(SimdMode::kScalar);
  OpimCResult scalar =
      RunOpimC(g, DiffusionModel::kIndependentCascade, 20, 0.3, 0.1, o);
  SetCoverageSimdMode(SimdMode::kAvx2);
  OpimCResult simd =
      RunOpimC(g, DiffusionModel::kIndependentCascade, 20, 0.3, 0.1, o);
  EXPECT_EQ(scalar.seeds, simd.seeds);
  EXPECT_DOUBLE_EQ(scalar.alpha, simd.alpha);
  EXPECT_EQ(scalar.num_rr_sets, simd.num_rr_sets);
}

}  // namespace
}  // namespace opim
