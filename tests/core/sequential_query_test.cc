#include <gtest/gtest.h>

#include "core/online_maximizer.h"
#include "gen/generators.h"
#include "rrset/rr_collection.h"

namespace opim {
namespace {

TEST(SequentialQueryTest, BudgetCounterAdvances) {
  Graph g = GenerateBarabasiAlbert(200, 4);
  OnlineMaximizer om(g, DiffusionModel::kIndependentCascade, 5, 0.1, 1);
  om.Advance(1000);
  EXPECT_EQ(om.sequential_queries_issued(), 0u);
  om.QuerySequential(BoundKind::kImproved);
  EXPECT_EQ(om.sequential_queries_issued(), 1u);
  om.QuerySequential(BoundKind::kImproved);
  EXPECT_EQ(om.sequential_queries_issued(), 2u);
}

TEST(SequentialQueryTest, PlainQueryDoesNotConsumeBudget) {
  Graph g = GenerateBarabasiAlbert(200, 4);
  OnlineMaximizer om(g, DiffusionModel::kIndependentCascade, 5, 0.1, 1);
  om.Advance(1000);
  om.Query(BoundKind::kBasic);
  om.QueryAll();
  EXPECT_EQ(om.sequential_queries_issued(), 0u);
}

TEST(SequentialQueryTest, LaterQueriesPayShrinkingBudget) {
  // δ_i = δ/2^i shrinks, so at a FIXED sample state a later sequential
  // query must report a weaker (or equal) guarantee than an earlier one
  // would at the same state — compare against plain Query at matching δ.
  Graph g = GenerateBarabasiAlbert(400, 5);
  OnlineMaximizer om(g, DiffusionModel::kLinearThreshold, 10, 0.1, 2);
  om.Advance(20000);

  OnlineSnapshot plain = om.Query(BoundKind::kImproved);           // δ/2 each
  OnlineSnapshot seq1 = om.QuerySequential(BoundKind::kImproved);  // δ/4 each
  OnlineSnapshot seq2 = om.QuerySequential(BoundKind::kImproved);  // δ/8 each
  OnlineSnapshot seq3 = om.QuerySequential(BoundKind::kImproved);  // δ/16 each

  // The first sequential query pays δ/2 split over two bounds (δ/4 each),
  // strictly less than the plain query's δ/2 each.
  EXPECT_LE(seq1.alpha, plain.alpha + 1e-12);
  // Identical sample state, shrinking budget -> non-increasing alpha.
  EXPECT_LE(seq2.alpha, seq1.alpha + 1e-12);
  EXPECT_LE(seq3.alpha, seq2.alpha + 1e-12);
  // But the cost of simultaneity is mild (log factors only).
  EXPECT_GT(seq3.alpha, 0.5 * seq1.alpha);
}

TEST(SequentialQueryTest, InterleavedWithAdvanceStillImproves) {
  Graph g = GenerateBarabasiAlbert(400, 5);
  OnlineMaximizer om(g, DiffusionModel::kIndependentCascade, 10, 0.1, 3);
  om.Advance(500);
  double first = om.QuerySequential(BoundKind::kImproved).alpha;
  om.Advance(31500);
  double later = om.QuerySequential(BoundKind::kImproved).alpha;
  // 64x more samples should dominate the halved budget.
  EXPECT_GT(later, first);
}

}  // namespace
}  // namespace opim
