#include <gtest/gtest.h>

#include "core/online_maximizer.h"
#include "gen/generators.h"

namespace opim {
namespace {

TEST(AdvanceParallelTest, PoolsBalancedAndCounted) {
  Graph g = GenerateBarabasiAlbert(200, 4);
  OnlineMaximizer om(g, DiffusionModel::kIndependentCascade, 5, 0.05, 1);
  om.AdvanceParallel(101, 3);
  EXPECT_EQ(om.num_rr_sets(), 101u);
  uint64_t t1 = om.r1().num_sets(), t2 = om.r2().num_sets();
  EXPECT_LE(t1 > t2 ? t1 - t2 : t2 - t1, 1u);
  om.AdvanceParallel(101, 3);
  EXPECT_EQ(om.num_rr_sets(), 202u);
  EXPECT_EQ(om.r1().num_sets(), om.r2().num_sets());
}

TEST(AdvanceParallelTest, DeterministicForFixedThreadCount) {
  Graph g = GenerateBarabasiAlbert(200, 4);
  OnlineMaximizer a(g, DiffusionModel::kLinearThreshold, 5, 0.05, 42);
  OnlineMaximizer b(g, DiffusionModel::kLinearThreshold, 5, 0.05, 42);
  a.AdvanceParallel(600, 2);
  b.AdvanceParallel(600, 2);
  OnlineSnapshot sa = a.Query(BoundKind::kImproved);
  OnlineSnapshot sb = b.Query(BoundKind::kImproved);
  EXPECT_EQ(sa.seeds, sb.seeds);
  EXPECT_EQ(sa.alpha, sb.alpha);
}

TEST(AdvanceParallelTest, MixesWithSerialAdvance) {
  Graph g = GenerateBarabasiAlbert(300, 4);
  OnlineMaximizer om(g, DiffusionModel::kIndependentCascade, 5, 0.05, 7);
  om.Advance(500);
  om.AdvanceParallel(500, 2);
  om.Advance(500);
  EXPECT_EQ(om.num_rr_sets(), 1500u);
  OnlineSnapshot snap = om.Query(BoundKind::kImproved);
  EXPECT_EQ(snap.seeds.size(), 5u);
  EXPECT_GT(snap.alpha, 0.0);
}

TEST(AdvanceParallelTest, QualityMatchesSerialStatistically) {
  Graph g = GenerateBarabasiAlbert(400, 5);
  OnlineMaximizer serial(g, DiffusionModel::kIndependentCascade, 8, 0.05, 3);
  OnlineMaximizer parallel(g, DiffusionModel::kIndependentCascade, 8, 0.05,
                           3);
  serial.Advance(16000);
  parallel.AdvanceParallel(16000, 4);
  double a = serial.Query(BoundKind::kImproved).alpha;
  double b = parallel.Query(BoundKind::kImproved).alpha;
  EXPECT_NEAR(a, b, 0.1);
}

}  // namespace
}  // namespace opim
