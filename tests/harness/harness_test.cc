#include <gtest/gtest.h>

#include "harness/datasets.h"
#include "harness/flags.h"
#include "harness/im_figure.h"
#include "harness/opim_figure.h"
#include "support/math_util.h"

namespace opim {
namespace {

TEST(FlagsTest, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--k=50", "--eps=0.1", "--name=twitter"};
  Flags f(4, const_cast<char**>(argv));
  EXPECT_EQ(f.GetUint("k", 0), 50u);
  EXPECT_DOUBLE_EQ(f.GetDouble("eps", 0.0), 0.1);
  EXPECT_EQ(f.GetString("name", ""), "twitter");
}

TEST(FlagsTest, ParsesSpaceForm) {
  const char* argv[] = {"prog", "--k", "7", "pos1"};
  Flags f(4, const_cast<char**>(argv));
  EXPECT_EQ(f.GetUint("k", 0), 7u);
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "pos1");
}

TEST(FlagsTest, BareBooleanFlag) {
  const char* argv[] = {"prog", "--quick"};
  Flags f(2, const_cast<char**>(argv));
  EXPECT_TRUE(f.Has("quick"));
  EXPECT_TRUE(f.GetBool("quick", false));
  EXPECT_FALSE(f.GetBool("missing", false));
}

TEST(FlagsTest, MalformedValueFallsBack) {
  const char* argv[] = {"prog", "--k=abc"};
  Flags f(2, const_cast<char**>(argv));
  EXPECT_EQ(f.GetInt("k", -5), -5);
  EXPECT_EQ(f.GetDouble("k", 2.5), 2.5);
}

TEST(DatasetsTest, AllStandardNamesBuild) {
  for (const std::string& name : StandardDatasetNames()) {
    auto r = MakeDataset(name, /*scale_exponent=*/10);
    ASSERT_TRUE(r.ok()) << name << ": " << r.status().ToString();
    const Graph& g = r.ValueOrDie();
    EXPECT_EQ(g.num_nodes(), 1024u) << name;
    EXPECT_GT(g.num_edges(), 1024u) << name;
    // Weighted cascade everywhere (LT-feasible).
    EXPECT_LE(g.MaxInWeightSum(), 1.0 + 1e-9) << name;
  }
}

TEST(DatasetsTest, AverageDegreesTrackTable2) {
  struct Expect {
    const char* name;
    double avg;
    double tol;
  } expected[] = {
      {"pokec-sim", 37.5, 4.0},
      {"orkut-sim", 76.3, 8.0},
      {"livejournal-sim", 28.5, 5.0},
      {"twitter-sim", 70.5, 7.0},
  };
  for (const auto& e : expected) {
    auto r = MakeDataset(e.name, 12);
    ASSERT_TRUE(r.ok());
    EXPECT_NEAR(r.ValueOrDie().average_degree(), e.avg, e.tol) << e.name;
  }
}

TEST(DatasetsTest, UnknownNameRejected) {
  auto r = MakeDataset("facebook");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(DatasetsTest, BadScaleRejected) {
  auto r = MakeDataset("pokec-sim", 99);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatasetsTest, TinyTestGraphUsable) {
  Graph g = MakeTinyTestGraph(128);
  EXPECT_EQ(g.num_nodes(), 128u);
  EXPECT_GT(g.num_edges(), 128u);
}

TEST(OpimFigureTest, SeriesShapeAndOrdering) {
  Graph g = MakeTinyTestGraph(512, 3);
  OpimFigureOptions opt;
  opt.k = 5;
  opt.base_checkpoint = 200;
  opt.num_checkpoints = 4;
  opt.reps = 2;
  OpimFigureSeries s =
      RunOpimFigure(g, DiffusionModel::kIndependentCascade, opt);

  ASSERT_EQ(s.checkpoints.size(), 4u);
  EXPECT_EQ(s.checkpoints[0], 200u);
  EXPECT_EQ(s.checkpoints[3], 1600u);
  ASSERT_EQ(s.series.size(), 7u);
  for (const auto& [name, values] : s.series) {
    ASSERT_EQ(values.size(), 4u) << name;
    for (double a : values) {
      EXPECT_GE(a, 0.0) << name;
      EXPECT_LE(a, 1.0) << name;
    }
  }
  // Headline orderings at the final checkpoint: OPIM+ >= OPIM0 and Borgs
  // is essentially zero.
  auto find = [&](const std::string& name) -> const std::vector<double>& {
    for (const auto& [n2, v] : s.series) {
      if (n2 == name) return v;
    }
    ADD_FAILURE() << name << " missing";
    static std::vector<double> empty;
    return empty;
  };
  EXPECT_GE(find("OPIM+").back(), find("OPIM0").back() - 1e-9);
  EXPECT_LT(find("Borgs").back(), 0.01);
}

TEST(OpimFigureTest, TableRendering) {
  Graph g = MakeTinyTestGraph(256, 4);
  OpimFigureOptions opt;
  opt.k = 3;
  opt.base_checkpoint = 100;
  opt.num_checkpoints = 2;
  opt.reps = 1;
  OpimFigureSeries s =
      RunOpimFigure(g, DiffusionModel::kLinearThreshold, opt);
  TablePrinter t = OpimFigureToTable(s);
  EXPECT_EQ(t.num_rows(), 2u);
  // rr_sets + 7 algorithms + advance_s + query_s
  EXPECT_EQ(t.num_columns(), 10u);
  EXPECT_NE(t.ToAlignedString().find("OPIM+"), std::string::npos);
  EXPECT_NE(t.ToAlignedString().find("advance_s"), std::string::npos);
  ASSERT_EQ(s.advance_seconds.size(), s.checkpoints.size());
  ASSERT_EQ(s.query_seconds.size(), s.checkpoints.size());
  for (double v : s.advance_seconds) EXPECT_GE(v, 0.0);
  for (double v : s.query_seconds) EXPECT_GE(v, 0.0);
}

TEST(ImFigureTest, RowsCoverSweep) {
  Graph g = MakeTinyTestGraph(512, 5);
  ImFigureOptions opt;
  opt.k = 5;
  opt.eps_list = {0.3, 0.2};
  opt.mc_samples = 500;
  opt.reps = 1;
  opt.cap_rr_sets = 200000;
  auto rows = RunImFigure(g, DiffusionModel::kIndependentCascade, opt);
  EXPECT_EQ(rows.size(), 6u * 2u);  // 6 algorithms x 2 eps
  for (const auto& row : rows) {
    EXPECT_GT(row.spread, 0.0) << row.algorithm;
    EXPECT_GT(row.rr_sets, 0.0) << row.algorithm;
    EXPECT_GE(row.seconds, 0.0) << row.algorithm;
    EXPECT_GE(row.eval_seconds, 0.0) << row.algorithm;
  }
  TablePrinter t = ImFigureToTable(rows);
  EXPECT_EQ(t.num_rows(), rows.size());
}

TEST(ImFigureTest, SpreadsAgreeAcrossAlgorithms) {
  Graph g = MakeTinyTestGraph(512, 6);
  ImFigureOptions opt;
  opt.k = 5;
  opt.eps_list = {0.25};
  opt.mc_samples = 4000;
  opt.reps = 1;
  auto rows = RunImFigure(g, DiffusionModel::kLinearThreshold, opt);
  double lo = 1e300, hi = 0.0;
  for (const auto& row : rows) {
    lo = std::min(lo, row.spread);
    hi = std::max(hi, row.spread);
  }
  EXPECT_GE(lo, 0.85 * hi);
}

}  // namespace
}  // namespace opim
