// Reproducibility of the experiment harness itself: identical options and
// seeds must give bit-identical figure series — the property that makes
// EXPERIMENTS.md numbers checkable by anyone.

#include <gtest/gtest.h>

#include "core/opim_c.h"
#include "harness/datasets.h"
#include "harness/im_figure.h"
#include "harness/opim_figure.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace opim {
namespace {

TEST(FigureDeterminismTest, OpimFigureIsReproducible) {
  Graph g = MakeTinyTestGraph(384, 2);
  OpimFigureOptions opt;
  opt.k = 4;
  opt.base_checkpoint = 200;
  opt.num_checkpoints = 3;
  opt.reps = 2;
  opt.seed = 77;
  OpimFigureSeries a = RunOpimFigure(g, DiffusionModel::kIndependentCascade, opt);
  OpimFigureSeries b = RunOpimFigure(g, DiffusionModel::kIndependentCascade, opt);
  ASSERT_EQ(a.series.size(), b.series.size());
  for (size_t i = 0; i < a.series.size(); ++i) {
    EXPECT_EQ(a.series[i].first, b.series[i].first);
    ASSERT_EQ(a.series[i].second.size(), b.series[i].second.size());
    for (size_t c = 0; c < a.series[i].second.size(); ++c) {
      EXPECT_DOUBLE_EQ(a.series[i].second[c], b.series[i].second[c])
          << a.series[i].first << " checkpoint " << c;
    }
  }
}

TEST(FigureDeterminismTest, DifferentSeedsChangeTheNumbers) {
  Graph g = MakeTinyTestGraph(384, 2);
  OpimFigureOptions opt;
  opt.k = 4;
  opt.base_checkpoint = 200;
  opt.num_checkpoints = 2;
  opt.reps = 1;
  opt.seed = 1;
  OpimFigureSeries a = RunOpimFigure(g, DiffusionModel::kIndependentCascade, opt);
  opt.seed = 2;
  OpimFigureSeries b = RunOpimFigure(g, DiffusionModel::kIndependentCascade, opt);
  bool any_diff = false;
  for (size_t i = 1; i < a.series.size() && !any_diff; ++i) {  // skip Borgs
    for (size_t c = 0; c < a.series[i].second.size(); ++c) {
      if (a.series[i].second[c] != b.series[i].second[c]) any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(FigureDeterminismTest, ImFigureSpreadReproducible) {
  Graph g = MakeTinyTestGraph(384, 3);
  ImFigureOptions opt;
  opt.k = 4;
  opt.eps_list = {0.3};
  opt.mc_samples = 400;
  opt.reps = 1;
  opt.seed = 5;
  auto a = RunImFigure(g, DiffusionModel::kLinearThreshold, opt);
  auto b = RunImFigure(g, DiffusionModel::kLinearThreshold, opt);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].algorithm, b[i].algorithm);
    EXPECT_DOUBLE_EQ(a[i].spread, b[i].spread) << a[i].algorithm;
    EXPECT_DOUBLE_EQ(a[i].rr_sets, b[i].rr_sets) << a[i].algorithm;
  }
}

TEST(FigureDeterminismTest, TelemetryStateDoesNotSteerResults) {
  // Metrics are observe-only by contract (obs/metrics.h): a run executed
  // with a cold telemetry registry and one executed after the registry has
  // accumulated a lot of state must produce identical seeds, α values and
  // RR-set counts. The phase timings differ — that's the point — but
  // nothing the algorithm returns may.
  Graph g = MakeTinyTestGraph(384, 2);
  OpimFigureOptions opt;
  opt.k = 4;
  opt.base_checkpoint = 200;
  opt.num_checkpoints = 3;
  opt.reps = 1;
  opt.seed = 99;
  OpimFigureSeries a = RunOpimFigure(g, DiffusionModel::kIndependentCascade, opt);
  // Pollute the registry between runs (simulates a long-lived process).
  MetricsRegistry::Default()
      .FindOrCreateCounter("opim.rrset.sets_generated")
      ->Add(123456789);
  MetricsRegistry::Default()
      .FindOrCreateHistogram("opim.select.greedy_us")
      ->Record(1u << 20);
  OpimFigureSeries b = RunOpimFigure(g, DiffusionModel::kIndependentCascade, opt);
  ASSERT_EQ(a.checkpoints, b.checkpoints);
  ASSERT_EQ(a.series.size(), b.series.size());
  for (size_t i = 0; i < a.series.size(); ++i) {
    for (size_t c = 0; c < a.series[i].second.size(); ++c) {
      EXPECT_DOUBLE_EQ(a.series[i].second[c], b.series[i].second[c])
          << a.series[i].first << " checkpoint " << c;
    }
  }

  OpimCOptions copt;
  copt.seed = 99;
  OpimCResult r1 = RunOpimC(g, DiffusionModel::kIndependentCascade, 4, 0.3,
                            0.01, copt);
  MetricsRegistry::Default().ResetValues();  // opposite direction: clearing
  OpimCResult r2 = RunOpimC(g, DiffusionModel::kIndependentCascade, 4, 0.3,
                            0.01, copt);
  EXPECT_EQ(r1.seeds, r2.seeds);
  EXPECT_DOUBLE_EQ(r1.alpha, r2.alpha);
  EXPECT_EQ(r1.num_rr_sets, r2.num_rr_sets);
  EXPECT_EQ(r1.total_rr_size, r2.total_rr_size);
  EXPECT_EQ(r1.iterations, r2.iterations);
}

TEST(FigureDeterminismTest, TraceSessionDoesNotSteerResults) {
  // Tracing inherits the observe-only contract (obs/trace.h): an active
  // trace session — worker registration, span recording, thread-pool task
  // hook and all — must leave seeds, α, and RR-set counts byte-identical
  // to an untraced run. This is the trace analogue of the telemetry test
  // above, and it is what lets operators enable --trace-json on
  // production runs without invalidating paper-figure comparisons.
  Graph g = MakeTinyTestGraph(384, 2);
  OpimCOptions copt;
  copt.seed = 99;
  copt.num_threads = 4;  // exercise the pool hook path too
  OpimCResult untraced = RunOpimC(g, DiffusionModel::kIndependentCascade, 4,
                                  0.3, 0.01, copt);

  TraceRecorder::Default().StartSession();
  OpimCResult traced = RunOpimC(g, DiffusionModel::kIndependentCascade, 4,
                                0.3, 0.01, copt);
  TraceRecorder::Default().StopSession();

  EXPECT_EQ(untraced.seeds, traced.seeds);
  EXPECT_DOUBLE_EQ(untraced.alpha, traced.alpha);
  EXPECT_EQ(untraced.num_rr_sets, traced.num_rr_sets);
  EXPECT_EQ(untraced.total_rr_size, traced.total_rr_size);
  EXPECT_EQ(untraced.iterations, traced.iterations);
#if defined(OPIM_TELEMETRY_ENABLED) && OPIM_TELEMETRY_ENABLED
  // The traced run must actually have recorded spans, or the assertion
  // above proves nothing.
  EXPECT_GT(TraceRecorder::Default().recorded_events(), 0u);
#endif

  // And a run after the session stopped matches the untraced one too.
  OpimCResult after = RunOpimC(g, DiffusionModel::kIndependentCascade, 4,
                               0.3, 0.01, copt);
  EXPECT_EQ(untraced.seeds, after.seeds);
  EXPECT_DOUBLE_EQ(untraced.alpha, after.alpha);
}

TEST(FigureDeterminismTest, IncludeTimAddsARowGroup) {
  Graph g = MakeTinyTestGraph(384, 4);
  ImFigureOptions opt;
  opt.k = 3;
  opt.eps_list = {0.3};
  opt.mc_samples = 200;
  opt.reps = 1;
  opt.include_tim = true;
  auto rows = RunImFigure(g, DiffusionModel::kIndependentCascade, opt);
  EXPECT_EQ(rows.size(), 7u);  // 6 + TIM+
  EXPECT_EQ(rows.back().algorithm, "TIM+");
  EXPECT_GT(rows.back().spread, 0.0);
}

}  // namespace
}  // namespace opim
