#include "gen/generators.h"

#include <gtest/gtest.h>

#include "graph/graph.h"

namespace opim {
namespace {

TEST(GeneratorsTest, ErdosRenyiCounts) {
  Graph g = GenerateErdosRenyi(100, 500);
  EXPECT_EQ(g.num_nodes(), 100u);
  EXPECT_EQ(g.num_edges(), 500u);
}

TEST(GeneratorsTest, ErdosRenyiNoSelfLoops) {
  Graph g = GenerateErdosRenyi(20, 200);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) EXPECT_NE(u, v);
  }
}

TEST(GeneratorsTest, DeterministicForSameSeed) {
  GenOptions opt;
  opt.seed = 99;
  Graph a = GenerateErdosRenyi(50, 200, opt);
  Graph b = GenerateErdosRenyi(50, 200, opt);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (NodeId u = 0; u < 50; ++u) {
    auto na = a.OutNeighbors(u), nb = b.OutNeighbors(u);
    ASSERT_EQ(na.size(), nb.size());
    for (size_t i = 0; i < na.size(); ++i) EXPECT_EQ(na[i], nb[i]);
  }
}

TEST(GeneratorsTest, DifferentSeedsDiffer) {
  GenOptions a, b;
  a.seed = 1;
  b.seed = 2;
  Graph ga = GenerateErdosRenyi(50, 200, a);
  Graph gb = GenerateErdosRenyi(50, 200, b);
  bool any_difference = false;
  for (NodeId u = 0; u < 50 && !any_difference; ++u) {
    auto na = ga.OutNeighbors(u), nb = gb.OutNeighbors(u);
    if (na.size() != nb.size()) {
      any_difference = true;
      break;
    }
    for (size_t i = 0; i < na.size(); ++i) {
      if (na[i] != nb[i]) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(GeneratorsTest, BarabasiAlbertDirectedDegrees) {
  Graph g = GenerateBarabasiAlbert(1000, 5);
  EXPECT_EQ(g.num_nodes(), 1000u);
  // Every node after the first contributes min(5, v) out-edges.
  EXPECT_NEAR(static_cast<double>(g.num_edges()), 5.0 * 1000, 20.0);
  // Preferential attachment: max in-degree far exceeds the average.
  GraphStats s = ComputeStats(g);
  EXPECT_GT(s.max_in_degree, 5 * static_cast<uint64_t>(s.average_degree));
}

TEST(GeneratorsTest, BarabasiAlbertUndirectedSymmetric) {
  Graph g = GenerateBarabasiAlbert(300, 4, /*undirected=*/true);
  // Every directed edge must have its reverse.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(g.OutDegree(u), g.InDegree(u)) << "node " << u;
  }
}

TEST(GeneratorsTest, WattsStrogatzNoRewireIsLattice) {
  Graph g = GenerateWattsStrogatz(20, 4, 0.0);
  // Ring lattice with k=4: each node has out-degree 4 (2 initiated + 2
  // reciprocal).
  for (NodeId v = 0; v < 20; ++v) {
    EXPECT_EQ(g.OutDegree(v), 4u) << "node " << v;
  }
}

TEST(GeneratorsTest, WattsStrogatzEdgeCount) {
  Graph g = GenerateWattsStrogatz(100, 6, 0.3);
  EXPECT_EQ(g.num_edges(), 100u * 6);
}

TEST(GeneratorsTest, PowerLawConfigurationAverageDegree) {
  Graph g = GeneratePowerLawConfiguration(2000, 2.1, 10.0);
  EXPECT_EQ(g.num_nodes(), 2000u);
  // Self-loop drops and stub mismatch cost a few percent.
  EXPECT_NEAR(g.average_degree(), 10.0, 1.5);
}

TEST(GeneratorsTest, PowerLawConfigurationHasSkew) {
  Graph g = GeneratePowerLawConfiguration(2000, 2.0, 10.0);
  GraphStats s = ComputeStats(g);
  EXPECT_GT(s.max_in_degree, 50u);
}

TEST(GeneratorsTest, RmatBasics) {
  Graph g = GenerateRmat(10, 5000);
  EXPECT_EQ(g.num_nodes(), 1024u);
  // Self-loops dropped, so slightly under m.
  EXPECT_LE(g.num_edges(), 5000u);
  EXPECT_GE(g.num_edges(), 4500u);
}

TEST(GeneratorsTest, RmatSkewedQuadrantsGiveSkewedDegrees) {
  Graph g = GenerateRmat(12, 40000, 0.57, 0.19, 0.19, 0.05);
  GraphStats s = ComputeStats(g);
  EXPECT_GT(s.max_in_degree, 10 * static_cast<uint64_t>(s.average_degree));
}

TEST(GeneratorsTest, Grid2DStructure) {
  Graph g = GenerateGrid2D(3, 4);
  EXPECT_EQ(g.num_nodes(), 12u);
  // Edges: horizontal 3*3 + vertical 2*4 = 17 undirected = 34 directed.
  EXPECT_EQ(g.num_edges(), 34u);
  // Corner (0,0) has exactly 2 out-neighbors.
  EXPECT_EQ(g.OutDegree(0), 2u);
}

TEST(GeneratorsTest, CompleteGraph) {
  Graph g = GenerateComplete(5);
  EXPECT_EQ(g.num_edges(), 20u);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(g.OutDegree(v), 4u);
    EXPECT_EQ(g.InDegree(v), 4u);
  }
}

TEST(GeneratorsTest, StarPathCycle) {
  Graph star = GenerateStar(6);
  EXPECT_EQ(star.OutDegree(0), 5u);
  EXPECT_EQ(star.InDegree(0), 0u);

  Graph path = GeneratePath(4);
  EXPECT_EQ(path.num_edges(), 3u);
  EXPECT_EQ(path.OutDegree(3), 0u);

  Graph cycle = GenerateCycle(4);
  EXPECT_EQ(cycle.num_edges(), 4u);
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_EQ(cycle.OutDegree(v), 1u);
    EXPECT_EQ(cycle.InDegree(v), 1u);
  }
}

TEST(GeneratorsTest, WeightSchemePlumbing) {
  GenOptions opt;
  opt.scheme = WeightScheme::kConstant;
  opt.constant_p = 0.03;
  Graph g = GeneratePath(3, opt);
  EXPECT_DOUBLE_EQ(g.OutProbs(0)[0], 0.03);
}

/// All generators must produce LT-feasible graphs under weighted cascade.
class GeneratorLtFeasibilityTest : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorLtFeasibilityTest, WeightedCascadeFeasible) {
  GenOptions opt;
  opt.scheme = WeightScheme::kWeightedCascade;
  Graph g;
  switch (GetParam()) {
    case 0: g = GenerateErdosRenyi(500, 3000, opt); break;
    case 1: g = GenerateBarabasiAlbert(500, 6, false, opt); break;
    case 2: g = GenerateBarabasiAlbert(500, 6, true, opt); break;
    case 3: g = GenerateWattsStrogatz(500, 6, 0.2, opt); break;
    case 4: g = GeneratePowerLawConfiguration(500, 2.2, 8.0, 0, opt); break;
    case 5: g = GenerateRmat(9, 4000, 0.57, 0.19, 0.19, 0.05, opt); break;
    case 6: g = GenerateGrid2D(20, 25, opt); break;
    default: FAIL();
  }
  EXPECT_LE(g.MaxInWeightSum(), 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllGenerators, GeneratorLtFeasibilityTest,
                         ::testing::Range(0, 7));

}  // namespace
}  // namespace opim
