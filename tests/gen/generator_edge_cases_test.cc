// Edge cases and determinism sweeps for every generator: minimal sizes,
// boundary parameters, and seed-stability (the experiments depend on
// bit-reproducible workloads).

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "graph/graph.h"

namespace opim {
namespace {

bool GraphsIdentical(const Graph& a, const Graph& b) {
  if (a.num_nodes() != b.num_nodes() || a.num_edges() != b.num_edges()) {
    return false;
  }
  for (NodeId u = 0; u < a.num_nodes(); ++u) {
    auto na = a.OutNeighbors(u), nb = b.OutNeighbors(u);
    auto pa = a.OutProbs(u), pb = b.OutProbs(u);
    if (na.size() != nb.size()) return false;
    for (size_t i = 0; i < na.size(); ++i) {
      if (na[i] != nb[i] || pa[i] != pb[i]) return false;
    }
  }
  return true;
}

TEST(GeneratorEdgeCasesTest, MinimalSizes) {
  EXPECT_EQ(GenerateErdosRenyi(2, 1).num_nodes(), 2u);
  EXPECT_EQ(GenerateBarabasiAlbert(2, 1).num_edges(), 1u);
  EXPECT_EQ(GenerateWattsStrogatz(3, 2, 0.5).num_nodes(), 3u);
  EXPECT_EQ(GenerateComplete(2).num_edges(), 2u);
  EXPECT_EQ(GenerateStar(2).num_edges(), 1u);
  EXPECT_EQ(GeneratePath(2).num_edges(), 1u);
  EXPECT_EQ(GenerateCycle(3).num_edges(), 3u);
  EXPECT_EQ(GenerateGrid2D(1, 1).num_edges(), 0u);
  EXPECT_EQ(GenerateGrid2D(1, 5).num_edges(), 8u);  // path, both ways
}

TEST(GeneratorEdgeCasesTest, RmatMinimalScale) {
  Graph g = GenerateRmat(1, 10);
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_LE(g.num_edges(), 10u);  // self-loops dropped
}

TEST(GeneratorEdgeCasesTest, ZeroEdgeRequest) {
  Graph g = GenerateErdosRenyi(10, 0);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GeneratorEdgeCasesTest, WattsStrogatzFullRewire) {
  // rewire_prob = 1: still n·k directed edges, still no self-loops.
  Graph g = GenerateWattsStrogatz(50, 4, 1.0);
  EXPECT_EQ(g.num_edges(), 200u);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) EXPECT_NE(u, v);
  }
}

/// Every generator must be deterministic in its seed.
class GeneratorDeterminismTest : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorDeterminismTest, SameSeedSameGraph) {
  GenOptions opt;
  opt.seed = 404;
  auto make = [&]() -> Graph {
    switch (GetParam()) {
      case 0: return GenerateErdosRenyi(80, 400, opt);
      case 1: return GenerateBarabasiAlbert(80, 4, false, opt);
      case 2: return GenerateBarabasiAlbert(80, 4, true, opt);
      case 3: return GenerateWattsStrogatz(80, 4, 0.3, opt);
      case 4: return GeneratePowerLawConfiguration(80, 2.2, 6.0, 0, opt);
      case 5: return GenerateRmat(7, 500, 0.57, 0.19, 0.19, 0.05, opt);
      default: return GenerateGrid2D(8, 10, opt);
    }
  };
  EXPECT_TRUE(GraphsIdentical(make(), make())) << "case " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllGenerators, GeneratorDeterminismTest,
                         ::testing::Range(0, 7));

TEST(GeneratorEdgeCasesTest, CompleteGraphIsWeightFeasibleAndUniform) {
  Graph g = GenerateComplete(6);  // WC: every p = 1/5
  for (NodeId v = 0; v < 6; ++v) {
    for (double p : g.InProbs(v)) EXPECT_DOUBLE_EQ(p, 0.2);
    EXPECT_NEAR(g.InWeightSum(v), 1.0, 1e-12);
  }
}

TEST(GeneratorEdgeCasesTest, GridCornersAndCenterDegrees) {
  Graph g = GenerateGrid2D(5, 5);
  auto id = [](uint32_t r, uint32_t c) { return r * 5 + c; };
  EXPECT_EQ(g.OutDegree(id(0, 0)), 2u);   // corner
  EXPECT_EQ(g.OutDegree(id(0, 2)), 3u);   // edge
  EXPECT_EQ(g.OutDegree(id(2, 2)), 4u);   // center
}

}  // namespace
}  // namespace opim
