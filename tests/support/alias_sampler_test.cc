#include "support/alias_sampler.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace opim {
namespace {

TEST(AliasSamplerTest, EmptyWeightsYieldEmptySampler) {
  AliasSampler s{std::vector<double>{}};
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
}

TEST(AliasSamplerTest, AllZeroWeightsYieldEmptySampler) {
  AliasSampler s{std::vector<double>{0.0, 0.0, 0.0}};
  EXPECT_TRUE(s.empty());
}

TEST(AliasSamplerTest, SingleCategoryAlwaysSampled) {
  AliasSampler s{std::vector<double>{3.5}};
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(s.Sample(rng), 0u);
}

TEST(AliasSamplerTest, ZeroWeightCategoryNeverSampled) {
  AliasSampler s{std::vector<double>{1.0, 0.0, 1.0}};
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) EXPECT_NE(s.Sample(rng), 1u);
}

TEST(AliasSamplerTest, UniformWeightsSampleUniformly) {
  const int n = 5, samples = 100000;
  AliasSampler s{std::vector<double>(n, 1.0)};
  Rng rng(3);
  std::vector<int> hist(n, 0);
  for (int i = 0; i < samples; ++i) ++hist[s.Sample(rng)];
  const double expected = static_cast<double>(samples) / n;
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(hist[i], expected, 5 * std::sqrt(expected)) << "cat " << i;
  }
}

TEST(AliasSamplerTest, SkewedWeightsMatchProportions) {
  std::vector<double> w = {1.0, 2.0, 4.0, 8.0};
  double total = 15.0;
  AliasSampler s(w);
  Rng rng(4);
  const int samples = 200000;
  std::vector<int> hist(w.size(), 0);
  for (int i = 0; i < samples; ++i) ++hist[s.Sample(rng)];
  for (size_t i = 0; i < w.size(); ++i) {
    double expected = samples * w[i] / total;
    EXPECT_NEAR(hist[i], expected, 5 * std::sqrt(expected)) << "cat " << i;
  }
}

TEST(AliasSamplerTest, UnnormalizedWeightsWork) {
  // Tiny absolute magnitudes; only ratios matter.
  std::vector<double> w = {1e-9, 3e-9};
  AliasSampler s(w);
  Rng rng(5);
  const int samples = 100000;
  int ones = 0;
  for (int i = 0; i < samples; ++i) ones += (s.Sample(rng) == 1u);
  EXPECT_NEAR(static_cast<double>(ones) / samples, 0.75, 0.01);
}

TEST(AliasSamplerTest, RebuildReplacesDistribution) {
  AliasSampler s{std::vector<double>{1.0, 0.0}};
  Rng rng(6);
  EXPECT_EQ(s.Sample(rng), 0u);
  s.Build({0.0, 1.0});
  for (int i = 0; i < 100; ++i) EXPECT_EQ(s.Sample(rng), 1u);
}

TEST(AliasSamplerTest, LargeDistributionAllCategoriesReachable) {
  const int n = 1000;
  std::vector<double> w(n, 1.0);
  AliasSampler s(w);
  Rng rng(7);
  std::vector<bool> seen(n, false);
  for (int i = 0; i < 50 * n; ++i) seen[s.Sample(rng)] = true;
  int missing = 0;
  for (bool b : seen) missing += !b;
  EXPECT_EQ(missing, 0);
}

/// Property sweep: for several distribution shapes, empirical frequencies
/// track the normalized weights.
class AliasSamplerDistributionTest
    : public ::testing::TestWithParam<std::vector<double>> {};

TEST_P(AliasSamplerDistributionTest, EmpiricalMatchesTheoretical) {
  const std::vector<double>& w = GetParam();
  double total = 0.0;
  for (double x : w) total += x;
  AliasSampler s(w);
  Rng rng(42);
  const int samples = 150000;
  std::vector<int> hist(w.size(), 0);
  for (int i = 0; i < samples; ++i) ++hist[s.Sample(rng)];
  for (size_t i = 0; i < w.size(); ++i) {
    double p = w[i] / total;
    double expected = samples * p;
    double tol = 5 * std::sqrt(samples * p * (1 - p)) + 1;
    EXPECT_NEAR(hist[i], expected, tol) << "cat " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AliasSamplerDistributionTest,
    ::testing::Values(std::vector<double>{0.5, 0.5},
                      std::vector<double>{0.9, 0.1},
                      std::vector<double>{1, 1, 1, 1, 1, 1, 1, 1},
                      std::vector<double>{10, 1, 0.1, 0.01},
                      std::vector<double>{0, 1, 0, 2, 0, 3}));

}  // namespace
}  // namespace opim
