#include "support/stopwatch.h"

#include <gtest/gtest.h>

#include <thread>

namespace opim {
namespace {

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  double ms = sw.ElapsedMillis();
  EXPECT_GE(ms, 18.0);
  EXPECT_LT(ms, 2000.0);  // sane upper bound even on a loaded machine
}

TEST(StopwatchTest, SecondsAndMillisAgree) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  double s = sw.ElapsedSeconds();
  double ms = sw.ElapsedMillis();
  // Taken an instant apart; ratio must be ~1000.
  EXPECT_NEAR(ms / s, 1000.0, 50.0);
}

TEST(StopwatchTest, RestartResets) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sw.Restart();
  EXPECT_LT(sw.ElapsedMillis(), 15.0);
}

TEST(StopwatchTest, MonotoneNonDecreasing) {
  Stopwatch sw;
  double prev = 0.0;
  for (int i = 0; i < 100; ++i) {
    double now = sw.ElapsedSeconds();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

}  // namespace
}  // namespace opim
