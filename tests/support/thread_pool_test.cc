#include "support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace opim {
namespace {

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // no tasks; must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, MultipleWaitCycles) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int cycle = 0; cycle < 5; ++cycle) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (cycle + 1) * 20);
  }
}

TEST(ThreadPoolTest, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&order, i] { order.push_back(i); });
  }
  pool.Wait();
  // One worker executes in submission order.
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(4);
  const uint64_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, [&](uint64_t i) { hits[i].fetch_add(1); });
  for (uint64_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](uint64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Wait(): destructor must still let tasks finish.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, DefaultThreadCountPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
}

TEST(ThreadPoolTest, ResolveThreadCount) {
  // 0 = auto: resolves to the hardware default; anything else is literal.
  EXPECT_EQ(ThreadPool::ResolveThreadCount(0),
            ThreadPool::DefaultThreadCount());
  EXPECT_GE(ThreadPool::ResolveThreadCount(0), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(1), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(5), 5u);
}

TEST(ThreadPoolTest, StatsCountTasksRun) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.Stats().tasks_run, 0u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 37; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(pool.Stats().tasks_run, 37u);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(pool.Stats().tasks_run, 38u);
}

}  // namespace
}  // namespace opim
