#include "support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace opim {
namespace {

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // no tasks; must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, MultipleWaitCycles) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int cycle = 0; cycle < 5; ++cycle) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (cycle + 1) * 20);
  }
}

TEST(ThreadPoolTest, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&order, i] { order.push_back(i); });
  }
  pool.Wait();
  // One worker executes in submission order.
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(4);
  const uint64_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, [&](uint64_t i) { hits[i].fetch_add(1); });
  for (uint64_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](uint64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Wait(): destructor must still let tasks finish.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, DefaultThreadCountPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
}

TEST(ThreadPoolTest, ResolveThreadCount) {
  // 0 = auto: resolves to the hardware default; anything else is literal.
  EXPECT_EQ(ThreadPool::ResolveThreadCount(0),
            ThreadPool::DefaultThreadCount());
  EXPECT_GE(ThreadPool::ResolveThreadCount(0), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(1), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(5), 5u);
}

TEST(ThreadPoolTest, WaitRethrowsTaskException) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
}

TEST(ThreadPoolTest, FirstExceptionWinsAndBatchIsDrained) {
  ThreadPool pool(1);  // one worker: deterministic execution order
  std::atomic<int> ran{0};
  pool.Submit([] { throw std::runtime_error("first"); });
  // Queued behind the failure on the same worker: must be drained without
  // running once the batch is poisoned.
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  try {
    pool.Wait();
    FAIL() << "Wait() must rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
  EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadPoolTest, PoolIsReusableAfterFailure) {
  ThreadPool pool(3);
  for (int cycle = 0; cycle < 3; ++cycle) {
    pool.Submit([] { throw std::logic_error("cycle failure"); });
    EXPECT_THROW(pool.Wait(), std::logic_error);
    // The failure must be consumed: the next batch runs normally.
    std::atomic<int> counter{0};
    for (int i = 0; i < 30; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), 30);
  }
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(100,
                                [](uint64_t i) {
                                  if (i == 37) {
                                    throw std::runtime_error("element 37");
                                  }
                                }),
               std::runtime_error);
  // And the pool still works afterwards.
  std::atomic<int> counter{0};
  pool.ParallelFor(50, [&](uint64_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, DestructorSwallowsUnconsumedFailure) {
  // A pool destroyed without Wait() after a throwing task must not
  // terminate the process.
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("never observed"); });
}

TEST(ThreadPoolTest, StatsCountTasksRun) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.Stats().tasks_run, 0u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 37; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(pool.Stats().tasks_run, 37u);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(pool.Stats().tasks_run, 38u);
}

}  // namespace
}  // namespace opim
