#include "support/resource_usage.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace opim {
namespace {

TEST(ResourceUsageTest, ReportsAPlausibleLiveProcess) {
  const ResourceUsage ru = ReadResourceUsage();
  // A running test binary always has pages resident, and its startup
  // alone takes minor faults (lazy heap/stack mapping).
  EXPECT_GT(ru.peak_rss_bytes, 0u);
  EXPECT_GT(ru.minor_page_faults, 0u);
}

TEST(ResourceUsageTest, CountersAreMonotone) {
  const ResourceUsage before = ReadResourceUsage();
  // Touch a fresh 8 MiB allocation so the peak and the minor-fault
  // counter have a reason to move; either way they must never go down.
  std::vector<uint8_t> ballast(8u << 20);
  std::memset(ballast.data(), 1, ballast.size());
  const ResourceUsage after = ReadResourceUsage();
  EXPECT_GE(after.peak_rss_bytes, before.peak_rss_bytes);
  EXPECT_GE(after.minor_page_faults, before.minor_page_faults);
  EXPECT_GE(after.major_page_faults, before.major_page_faults);
  // The ballast pages were actually touched, so they show up in the peak.
  EXPECT_GE(after.peak_rss_bytes, ballast.size());
}

}  // namespace
}  // namespace opim
