#include "support/status.h"

#include <gtest/gtest.h>

namespace opim {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryMethodsCarryCodeAndMessage) {
  Status st = Status::InvalidArgument("bad k");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad k");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::IOError("x"), Status::IOError("x"));
  EXPECT_FALSE(Status::IOError("x") == Status::IOError("y"));
  EXPECT_FALSE(Status::IOError("x") == Status::NotFound("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.ValueOr(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string s = std::move(r).ValueOrDie();
  EXPECT_EQ(s, "hello");
}

Status FailingOp() { return Status::IOError("disk"); }

Status UsesReturnNotOk() {
  OPIM_RETURN_NOT_OK(FailingOp());
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkMacroPropagates) {
  EXPECT_EQ(UsesReturnNotOk().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace opim
