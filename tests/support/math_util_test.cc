#include "support/math_util.h"

#include <gtest/gtest.h>

#include <cmath>

namespace opim {
namespace {

TEST(MathUtilTest, LogFactorialSmallValues) {
  EXPECT_NEAR(LogFactorial(0), 0.0, 1e-12);
  EXPECT_NEAR(LogFactorial(1), 0.0, 1e-12);
  EXPECT_NEAR(LogFactorial(5), std::log(120.0), 1e-9);
  EXPECT_NEAR(LogFactorial(10), std::log(3628800.0), 1e-9);
}

TEST(MathUtilTest, LogBinomialMatchesDirectComputation) {
  EXPECT_NEAR(LogBinomial(5, 2), std::log(10.0), 1e-9);
  EXPECT_NEAR(LogBinomial(10, 3), std::log(120.0), 1e-9);
  EXPECT_NEAR(LogBinomial(52, 5), std::log(2598960.0), 1e-6);
}

TEST(MathUtilTest, LogBinomialBoundaries) {
  EXPECT_EQ(LogBinomial(10, 0), 0.0);
  EXPECT_EQ(LogBinomial(10, 10), 0.0);
  EXPECT_EQ(LogBinomial(10, 15), 0.0);  // clamped out-of-range
}

TEST(MathUtilTest, LogBinomialSymmetry) {
  EXPECT_NEAR(LogBinomial(100, 30), LogBinomial(100, 70), 1e-8);
}

TEST(MathUtilTest, LogBinomialHugeInputsFinite) {
  double v = LogBinomial(42000000, 50);  // Twitter-scale C(n, k)
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_GT(v, 0.0);
  // C(n,k) <= n^k, so log <= k log n.
  EXPECT_LE(v, 50 * std::log(42000000.0));
}

TEST(MathUtilTest, OneMinusInvEConstant) {
  EXPECT_NEAR(kOneMinusInvE, 1.0 - 1.0 / std::exp(1.0), 1e-15);
}

TEST(MathUtilTest, CeilToU64) {
  EXPECT_EQ(CeilToU64(-1.0), 0u);
  EXPECT_EQ(CeilToU64(0.0), 0u);
  EXPECT_EQ(CeilToU64(0.1), 1u);
  EXPECT_EQ(CeilToU64(1.0), 1u);
  EXPECT_EQ(CeilToU64(1.5), 2u);
  EXPECT_EQ(CeilToU64(1e18), 1000000000000000000ULL);
}

TEST(MathUtilTest, CeilToU64SaturatesAtMax) {
  EXPECT_EQ(CeilToU64(1e30), UINT64_MAX);
}

TEST(MathUtilTest, CeilLog2) {
  EXPECT_EQ(CeilLog2(1), 0u);
  EXPECT_EQ(CeilLog2(2), 1u);
  EXPECT_EQ(CeilLog2(3), 2u);
  EXPECT_EQ(CeilLog2(4), 2u);
  EXPECT_EQ(CeilLog2(5), 3u);
  EXPECT_EQ(CeilLog2(1024), 10u);
  EXPECT_EQ(CeilLog2(1025), 11u);
}

TEST(MathUtilTest, SquaredSqrtSum) {
  // (sqrt(4) + sqrt(9))^2 = 25.
  EXPECT_NEAR(SquaredSqrtSum(4.0, 9.0), 25.0, 1e-12);
  EXPECT_NEAR(SquaredSqrtSum(0.0, 0.0), 0.0, 1e-12);
  // Negative inputs clamp to 0.
  EXPECT_NEAR(SquaredSqrtSum(-1.0, 4.0), 4.0, 1e-12);
}

TEST(MathUtilTest, SquaredSqrtDiffClamped) {
  // (sqrt(9) - sqrt(4))^2 = 1.
  EXPECT_NEAR(SquaredSqrtDiffClamped(9.0, 4.0), 1.0, 1e-12);
  // sqrt(u) < sqrt(v) clamps to 0 rather than going positive again.
  EXPECT_EQ(SquaredSqrtDiffClamped(4.0, 9.0), 0.0);
  EXPECT_EQ(SquaredSqrtDiffClamped(0.0, 1.0), 0.0);
}

}  // namespace
}  // namespace opim
