// RunControl unit tests: trip-once semantics, guardrail ordering, peak
// tracking, and the StopReason/exit-code taxonomy.

#include "support/run_control.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace opim {
namespace {

TEST(RunControlTest, FreshControlNeverStops) {
  RunControl c;
  EXPECT_FALSE(c.Stopped());
  EXPECT_FALSE(c.Poll());
  EXPECT_FALSE(c.Poll(1ull << 40));  // no budget armed: bytes are ignored
  EXPECT_EQ(c.reason(), StopReason::kConverged);
  EXPECT_FALSE(c.has_deadline());
  EXPECT_EQ(c.memory_budget_bytes(), 0u);
  EXPECT_EQ(c.seconds_since_trip(), 0.0);
}

TEST(RunControlTest, ExpiredDeadlineTripsOnFirstPoll) {
  RunControl c;
  c.SetDeadlineAfterMillis(0);  // already expired
  EXPECT_TRUE(c.has_deadline());
  EXPECT_FALSE(c.Stopped());  // arming alone does not trip
  EXPECT_TRUE(c.Poll());
  EXPECT_TRUE(c.Stopped());
  EXPECT_EQ(c.reason(), StopReason::kDeadline);
  EXPECT_LE(c.deadline_slack_seconds(), 0.0);
}

TEST(RunControlTest, FutureDeadlineDoesNotTrip) {
  RunControl c;
  c.SetDeadlineAfterMillis(60'000);
  EXPECT_FALSE(c.Poll());
  EXPECT_GT(c.deadline_slack_seconds(), 0.0);
}

TEST(RunControlTest, MemoryBudgetTripsWhenReached) {
  RunControl c;
  c.SetMemoryBudgetBytes(1000);
  EXPECT_FALSE(c.Poll(999));
  // "Exhausted when reached": bytes == budget trips.
  EXPECT_TRUE(c.Poll(1000));
  EXPECT_EQ(c.reason(), StopReason::kMemoryBudget);
}

TEST(RunControlTest, PeakBytesTracksLargestPoll) {
  RunControl c;
  c.Poll(100);
  c.Poll(5000);
  c.Poll(300);
  EXPECT_EQ(c.peak_bytes(), 5000u);
}

TEST(RunControlTest, CancelFlagTripsOnPoll) {
  std::atomic<bool> flag{false};
  RunControl c;
  c.BindCancelFlag(&flag);
  EXPECT_FALSE(c.Poll());
  flag.store(true);
  EXPECT_TRUE(c.Poll());
  EXPECT_EQ(c.reason(), StopReason::kCancelled);
}

TEST(RunControlTest, RequestCancelTripsImmediately) {
  RunControl c;
  c.RequestCancel();
  EXPECT_TRUE(c.Stopped());
  EXPECT_EQ(c.reason(), StopReason::kCancelled);
  EXPECT_GE(c.seconds_since_trip(), 0.0);
}

TEST(RunControlTest, FirstReasonWins) {
  RunControl c;
  c.RequestCancel();
  c.TripWorkerFailure();  // later trip must not overwrite the reason
  c.SetMemoryBudgetBytes(1);
  c.Poll(1ull << 30);
  EXPECT_EQ(c.reason(), StopReason::kCancelled);
}

TEST(RunControlTest, CancelWinsOverMemoryAndDeadlineInOnePoll) {
  // All three guardrails fire on the same Poll: the documented check order
  // is cancel -> memory -> deadline.
  std::atomic<bool> flag{true};
  RunControl c;
  c.BindCancelFlag(&flag);
  c.SetMemoryBudgetBytes(1);
  c.SetDeadlineAfterMillis(0);
  EXPECT_TRUE(c.Poll(100));
  EXPECT_EQ(c.reason(), StopReason::kCancelled);
}

TEST(RunControlTest, ConcurrentPollersAgreeOnOneReason) {
  RunControl c;
  c.SetMemoryBudgetBytes(1);
  std::vector<std::thread> threads;
  std::atomic<int> stopped_count{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&c, &stopped_count] {
      for (int i = 0; i < 1000; ++i) {
        if (c.Poll(2)) {
          stopped_count.fetch_add(1);
          break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(stopped_count.load(), 8);
  EXPECT_EQ(c.reason(), StopReason::kMemoryBudget);
}

TEST(StopReasonTest, NamesAreStable) {
  EXPECT_STREQ(StopReasonName(StopReason::kConverged), "converged");
  EXPECT_STREQ(StopReasonName(StopReason::kDeadline), "deadline");
  EXPECT_STREQ(StopReasonName(StopReason::kMemoryBudget), "memory_budget");
  EXPECT_STREQ(StopReasonName(StopReason::kCancelled), "cancelled");
  EXPECT_STREQ(StopReasonName(StopReason::kWorkerFailure), "worker_failure");
  EXPECT_STREQ(StopReasonName(StopReason::kSpillFailure), "spill_failure");
}

TEST(StopReasonTest, TripSpillFailureReportsTheDistinctReason) {
  RunControl c;
  c.TripSpillFailure();
  EXPECT_TRUE(c.Stopped());
  EXPECT_EQ(c.reason(), StopReason::kSpillFailure);
}

TEST(StopReasonTest, ExitCodesMatchTheDocumentedTaxonomy) {
  EXPECT_EQ(ExitCodeForStopReason(StopReason::kConverged), 0);
  EXPECT_EQ(ExitCodeForStopReason(StopReason::kDeadline), 3);
  EXPECT_EQ(ExitCodeForStopReason(StopReason::kMemoryBudget), 4);
  EXPECT_EQ(ExitCodeForStopReason(StopReason::kCancelled), 5);
  EXPECT_EQ(ExitCodeForStopReason(StopReason::kWorkerFailure), 6);
  EXPECT_EQ(ExitCodeForStopReason(StopReason::kSpillFailure), 7);
}

}  // namespace
}  // namespace opim
