// SignalGuard tests: a raised SIGINT sets the flag instead of killing the
// process, the flag feeds RunControl's kCancelled path, the guard is
// reinstallable after destruction, and a second signal forces an
// immediate _exit(128 + sig) — the documented abort path for operators
// who will not wait out a checkpoint-on-shutdown.

#include "support/signal_guard.h"

#include <gtest/gtest.h>

#include <csignal>

#include "support/run_control.h"

namespace opim {
namespace {

TEST(SignalGuardTest, FreshGuardIsUntriggered) {
  SignalGuard guard;
  EXPECT_FALSE(guard.triggered());
  EXPECT_EQ(guard.signal_number(), 0);
  ASSERT_NE(guard.flag(), nullptr);
  EXPECT_FALSE(guard.flag()->load());
}

TEST(SignalGuardTest, RaisedSigintSetsFlagInsteadOfKilling) {
  SignalGuard guard;
  // raise() delivers synchronously on this thread; with the guard's
  // handler installed the process survives and the flag flips.
  ASSERT_EQ(std::raise(SIGINT), 0);
  EXPECT_TRUE(guard.triggered());
  EXPECT_TRUE(guard.flag()->load());
  EXPECT_EQ(guard.signal_number(), SIGINT);
}

TEST(SignalGuardTest, SigtermAlsoBridged) {
  SignalGuard guard;
  ASSERT_EQ(std::raise(SIGTERM), 0);
  EXPECT_TRUE(guard.triggered());
  EXPECT_EQ(guard.signal_number(), SIGTERM);
}

TEST(SignalGuardTest, GuardIsReinstallableAfterDestruction) {
  {
    SignalGuard guard;
    ASSERT_EQ(std::raise(SIGINT), 0);
    EXPECT_TRUE(guard.triggered());
  }
  // A second guard starts clean: the previous trigger does not leak.
  SignalGuard guard;
  EXPECT_FALSE(guard.triggered());
  EXPECT_FALSE(guard.flag()->load());
  ASSERT_EQ(std::raise(SIGINT), 0);
  EXPECT_TRUE(guard.triggered());
}

TEST(SignalGuardTest, SecondSigintForcesImmediateExit130) {
  // The second signal must not wait for any graceful path (the thread
  // may be mid-fsync in a shutdown checkpoint): the handler _exits with
  // the conventional 128 + sig code. EXPECT_EXIT forks, so the parent
  // test process keeps its own handlers.
  EXPECT_EXIT(
      {
        SignalGuard guard;
        std::raise(SIGINT);   // first: graceful, flag set
        std::raise(SIGINT);   // second: immediate _exit(130)
      },
      ::testing::ExitedWithCode(130), "");
}

TEST(SignalGuardTest, SecondSigtermForcesImmediateExit143) {
  EXPECT_EXIT(
      {
        SignalGuard guard;
        std::raise(SIGTERM);
        std::raise(SIGTERM);
      },
      ::testing::ExitedWithCode(143), "");
}

TEST(SignalGuardTest, FlagDrivesRunControlCancellation) {
  SignalGuard guard;
  RunControl control;
  control.BindCancelFlag(guard.flag());
  EXPECT_FALSE(control.Poll());
  ASSERT_EQ(std::raise(SIGINT), 0);
  EXPECT_TRUE(control.Poll());
  EXPECT_EQ(control.reason(), StopReason::kCancelled);
}

}  // namespace
}  // namespace opim
