// Retrying full-buffer I/O helpers (support/io_util.h): exact-length
// transfer over regular files and pipes, the EOF-is-an-error contract,
// positional variants leaving the fd offset untouched, and the bounded
// EAGAIN retry budget on a wedged non-blocking descriptor.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "support/io_util.h"
#include "support/stopwatch.h"

namespace opim {
namespace {

class TempFd {
 public:
  explicit TempFd(const std::string& name) {
    path_ = ::testing::TempDir() + "/" + name + ".XXXXXX";
    std::vector<char> tmpl(path_.begin(), path_.end());
    tmpl.push_back('\0');
    fd_ = ::mkstemp(tmpl.data());
    path_.assign(tmpl.data());
    EXPECT_GE(fd_, 0);
  }
  ~TempFd() {
    if (fd_ >= 0) ::close(fd_);
    ::unlink(path_.c_str());
  }
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::string path_;
};

std::vector<uint8_t> Pattern(size_t len, uint8_t tag) {
  std::vector<uint8_t> out(len);
  for (size_t i = 0; i < len; ++i) {
    out[i] = static_cast<uint8_t>((i * 131 + tag) & 0xFF);
  }
  return out;
}

TEST(IoUtilTest, WriteThenReadRoundTripsAFile) {
  TempFd f("io_roundtrip");
  const std::vector<uint8_t> data = Pattern(1 << 20, 7);  // 1 MiB
  ASSERT_TRUE(io::WriteFull(f.fd(), data.data(), data.size()).ok());
  ASSERT_EQ(::lseek(f.fd(), 0, SEEK_SET), 0);
  std::vector<uint8_t> back(data.size());
  ASSERT_TRUE(io::ReadFull(f.fd(), back.data(), back.size()).ok());
  EXPECT_EQ(data, back);
}

TEST(IoUtilTest, ReadPastEofIsIOError) {
  TempFd f("io_eof");
  const std::vector<uint8_t> data = Pattern(100, 3);
  ASSERT_TRUE(io::WriteFull(f.fd(), data.data(), data.size()).ok());
  ASSERT_EQ(::lseek(f.fd(), 0, SEEK_SET), 0);
  std::vector<uint8_t> back(200);
  const Status st = io::ReadFull(f.fd(), back.data(), back.size());
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
}

TEST(IoUtilTest, PositionalVariantsLeaveTheOffsetAlone) {
  TempFd f("io_positional");
  const std::vector<uint8_t> a = Pattern(4096, 1);
  const std::vector<uint8_t> b = Pattern(4096, 2);
  ASSERT_TRUE(io::PWriteFull(f.fd(), a.data(), a.size(), 0).ok());
  ASSERT_TRUE(io::PWriteFull(f.fd(), b.data(), b.size(),
                             static_cast<off_t>(a.size())).ok());
  // pwrite must not have moved the descriptor offset.
  EXPECT_EQ(::lseek(f.fd(), 0, SEEK_CUR), 0);

  std::vector<uint8_t> back(4096);
  ASSERT_TRUE(io::PReadFull(f.fd(), back.data(), back.size(),
                            static_cast<off_t>(a.size())).ok());
  EXPECT_EQ(b, back);
  ASSERT_TRUE(io::PReadFull(f.fd(), back.data(), back.size(), 0).ok());
  EXPECT_EQ(a, back);

  const Status st =
      io::PReadFull(f.fd(), back.data(), back.size(),
                    static_cast<off_t>(a.size() + b.size()) - 10);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
}

TEST(IoUtilTest, PipeTransferSurvivesShortWrites) {
  // A pipe's 64 KiB buffer forces short writes on a 1 MiB payload;
  // WriteFull must keep feeding while a reader drains.
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::vector<uint8_t> data = Pattern(1 << 20, 9);
  std::vector<uint8_t> back(data.size());
  std::thread reader([&] {
    EXPECT_TRUE(io::ReadFull(fds[0], back.data(), back.size()).ok());
  });
  ASSERT_TRUE(io::WriteFull(fds[1], data.data(), data.size()).ok());
  reader.join();
  ::close(fds[0]);
  ::close(fds[1]);
  EXPECT_EQ(data, back);
}

TEST(IoUtilTest, WedgedNonblockingPipeFailsBounded) {
  // Fill a non-blocking pipe and keep writing with nobody draining: the
  // helper must spend its kMaxStalledRetries backoff budget and fail
  // with an IOError instead of spinning forever.
  int fds[2];
  ASSERT_EQ(::pipe2(fds, O_NONBLOCK), 0);
  const std::vector<uint8_t> chunk(64 * 1024, 0xAB);
  // Saturate the pipe buffer with raw writes first.
  while (::write(fds[1], chunk.data(), chunk.size()) > 0) {
  }
  Stopwatch sw;
  const Status st = io::WriteFull(fds[1], chunk.data(), chunk.size());
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  // The backoff schedule (1ms doubling, capped at 64ms, 8 stalls) sums
  // to ~127ms; allow generous slack but insist it returned promptly.
  EXPECT_LT(sw.ElapsedSeconds(), 10.0);
  ::close(fds[0]);
  ::close(fds[1]);
}

}  // namespace
}  // namespace opim
