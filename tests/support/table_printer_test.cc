#include "support/table_printer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace opim {
namespace {

TEST(TablePrinterTest, AlignedOutputContainsHeadersAndRows) {
  TablePrinter t({"name", "value"});
  t.AddRow({"alpha", "0.5"});
  t.AddRow({"beta", "0.25"});
  std::string out = t.ToAlignedString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("0.25"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);  // header rule
}

TEST(TablePrinterTest, ColumnsAreAligned) {
  TablePrinter t({"a", "b"});
  t.AddRow({"xxxxxxxx", "1"});
  t.AddRow({"y", "2"});
  std::string out = t.ToAlignedString();
  // Each line's second column starts at the same offset: find "1" and "2".
  size_t pos1 = out.find("1\n");
  size_t pos2 = out.find("2\n");
  size_t line1_start = out.rfind('\n', pos1) + 1;
  size_t line2_start = out.rfind('\n', pos2) + 1;
  EXPECT_EQ(pos1 - line1_start, pos2 - line2_start);
}

TEST(TablePrinterTest, CsvBasic) {
  TablePrinter t({"x", "y"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.ToCsvString(), "x,y\n1,2\n");
}

TEST(TablePrinterTest, CsvEscapesSpecialCharacters) {
  TablePrinter t({"a"});
  t.AddRow({"has,comma"});
  t.AddRow({"has\"quote"});
  std::string csv = t.ToCsvString();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(TablePrinterTest, CellFormatting) {
  EXPECT_EQ(TablePrinter::Cell(static_cast<uint64_t>(42)), "42");
  EXPECT_EQ(TablePrinter::Cell(static_cast<int64_t>(-7)), "-7");
  EXPECT_EQ(TablePrinter::Cell(0.5, 3), "0.5");
  EXPECT_EQ(TablePrinter::Cell(1234.5678, 6), "1234.57");
}

TEST(TablePrinterTest, WriteCsvRoundTrips) {
  TablePrinter t({"k", "v"});
  t.AddRow({"1", "a"});
  std::string path = ::testing::TempDir() + "/opim_table_test.csv";
  ASSERT_TRUE(t.WriteCsv(path).ok());
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "k,v");
  std::getline(f, line);
  EXPECT_EQ(line, "1,a");
  std::remove(path.c_str());
}

TEST(TablePrinterTest, WriteCsvToBadPathFails) {
  TablePrinter t({"a"});
  Status st = t.WriteCsv("/nonexistent_dir_xyz/file.csv");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
}

TEST(TablePrinterTest, CountsTracked) {
  TablePrinter t({"a", "b", "c"});
  EXPECT_EQ(t.num_columns(), 3u);
  EXPECT_EQ(t.num_rows(), 0u);
  t.AddRow({"1", "2", "3"});
  EXPECT_EQ(t.num_rows(), 1u);
}

}  // namespace
}  // namespace opim
