#include "support/mmap_arena.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

namespace opim {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(MmapArenaTest, AlignUpRoundsToCacheLines) {
  EXPECT_EQ(MmapArena::AlignUp(0), 0u);
  EXPECT_EQ(MmapArena::AlignUp(1), 64u);
  EXPECT_EQ(MmapArena::AlignUp(63), 64u);
  EXPECT_EQ(MmapArena::AlignUp(64), 64u);
  EXPECT_EQ(MmapArena::AlignUp(65), 128u);
  EXPECT_EQ(MmapArena::AlignUp(1000), 1024u);
}

TEST(MmapArenaTest, AllocateIsZeroedAndWritable) {
  auto arena_or = MmapArena::Allocate(4096 + 17);
  ASSERT_TRUE(arena_or.ok()) << arena_or.status().ToString();
  auto arena = arena_or.ValueOrDie();
  ASSERT_EQ(arena->size(), 4096u + 17u);
  EXPECT_FALSE(arena->file_backed());
  for (uint64_t i = 0; i < arena->size(); ++i) {
    ASSERT_EQ(arena->data()[i], 0u) << "byte " << i;
  }
  uint8_t* rw = arena->mutable_data();
  std::memset(rw, 0xAB, arena->size());
  EXPECT_EQ(arena->data()[0], 0xABu);
  EXPECT_EQ(arena->data()[arena->size() - 1], 0xABu);
}

TEST(MmapArenaTest, MapFileSeesTheFileBytes) {
  const std::string path = TempPath("opim_arena_map.bin");
  std::string content(10000, '\0');
  for (size_t i = 0; i < content.size(); ++i) {
    content[i] = static_cast<char>(i * 131);
  }
  {
    std::ofstream f(path, std::ios::binary);
    f.write(content.data(), static_cast<std::streamsize>(content.size()));
  }
  auto arena_or = MmapArena::MapFile(path, MmapArena::Advice::kSequential);
  ASSERT_TRUE(arena_or.ok()) << arena_or.status().ToString();
  auto arena = arena_or.ValueOrDie();
  ASSERT_EQ(arena->size(), content.size());
  EXPECT_TRUE(arena->file_backed());
  EXPECT_EQ(std::memcmp(arena->data(), content.data(), content.size()), 0);
  // Hints are best-effort and must never fail, in or out of range.
  arena->Advise(0, arena->size(), MmapArena::Advice::kRandom);
  arena->Advise(100, 50, MmapArena::Advice::kWillNeed);
  arena->Advise(arena->size() + 100, 10, MmapArena::Advice::kNormal);
  std::remove(path.c_str());
}

TEST(MmapArenaTest, MapFileOfMissingPathIsIOError) {
  auto arena_or = MmapArena::MapFile("/nonexistent/opim.arena");
  ASSERT_FALSE(arena_or.ok());
  EXPECT_EQ(arena_or.status().code(), StatusCode::kIOError);
}

TEST(MmapArenaTest, EmptyFileMapsToZeroLengthArena) {
  const std::string path = TempPath("opim_arena_empty.bin");
  { std::ofstream f(path, std::ios::binary); }
  auto arena_or = MmapArena::MapFile(path);
  ASSERT_TRUE(arena_or.ok()) << arena_or.status().ToString();
  EXPECT_EQ(arena_or.ValueOrDie()->size(), 0u);
  std::remove(path.c_str());
}

TEST(MmapArenaTest, MappingOutlivesTheFile) {
  // The unlink-while-mapped idiom the spill tier relies on: pages stay
  // valid until the last arena reference drops.
  const std::string path = TempPath("opim_arena_unlinked.bin");
  {
    std::ofstream f(path, std::ios::binary);
    f << "still here after unlink";
  }
  auto arena_or = MmapArena::MapFile(path);
  ASSERT_TRUE(arena_or.ok());
  std::remove(path.c_str());
  auto arena = arena_or.ValueOrDie();
  EXPECT_EQ(std::memcmp(arena->data(), "still here", 10), 0);
}

}  // namespace
}  // namespace opim
