#include "support/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace opim {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU32(), b.NextU32());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(123), b(124);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += (a.NextU32() == b.NextU32());
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, DifferentStreamsDiffer) {
  Rng a(123, 1), b(123, 2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += (a.NextU32() == b.NextU32());
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.UniformDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanIsHalf) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformBelowRespectsBound) {
  Rng rng(9);
  for (uint32_t bound : {1u, 2u, 3u, 7u, 100u, 1000000u}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.UniformBelow(bound), bound);
    }
  }
}

TEST(RngTest, UniformBelowCoversAllValues) {
  Rng rng(11);
  std::set<uint32_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformBelow(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformBelowIsUnbiased) {
  // Chi-squared-style check over 8 buckets.
  Rng rng(13);
  const int buckets = 8, samples = 80000;
  std::vector<int> hist(buckets, 0);
  for (int i = 0; i < samples; ++i) ++hist[rng.UniformBelow(buckets)];
  const double expected = static_cast<double>(samples) / buckets;
  for (int b = 0; b < buckets; ++b) {
    EXPECT_NEAR(hist[b], expected, 5 * std::sqrt(expected))
        << "bucket " << b;
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(19);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.Split(1);
  Rng child2 = parent.Split(1);  // parent state advanced; differs
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += (child.NextU32() == child2.NextU32());
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == 0xffffffffu);
  Rng rng(1);
  (void)rng();  // callable
}

TEST(SplitMix64Test, KnownSequenceIsStable) {
  uint64_t s = 0;
  uint64_t first = SplitMix64(s);
  uint64_t second = SplitMix64(s);
  EXPECT_NE(first, second);
  // Regression pin: SplitMix64(0) is a published constant.
  uint64_t s2 = 0;
  EXPECT_EQ(SplitMix64(s2), 0xe220a8397b1dcdafULL);
}

}  // namespace
}  // namespace opim
