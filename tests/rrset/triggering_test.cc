#include "rrset/triggering.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "gen/generators.h"
#include "rrset/rr_collection.h"

namespace opim {
namespace {

TEST(IcTriggeringTest, SamplesEdgesIndependently) {
  // Node 2 has two in-edges with p = 1 and p = 0: T_2 = {0} always.
  GraphBuilder b(3);
  b.AddEdge(0, 2, 1.0);
  b.AddEdge(1, 2, 0.0);
  Graph g = b.Build();
  IcTriggering dist(g);
  Rng rng(1);
  std::vector<NodeId> out;
  for (int i = 0; i < 100; ++i) {
    out.clear();
    uint64_t cost = dist.SampleTriggeringSet(2, rng, &out);
    EXPECT_EQ(cost, 2u);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 0u);
  }
}

TEST(LtTriggeringTest, AtMostOneMember) {
  Graph g = GenerateErdosRenyi(50, 400);  // WC weights
  LtTriggering dist(g);
  Rng rng(2);
  std::vector<NodeId> out;
  for (NodeId v = 0; v < 50; ++v) {
    for (int i = 0; i < 20; ++i) {
      out.clear();
      dist.SampleTriggeringSet(v, rng, &out);
      EXPECT_LE(out.size(), 1u);
      if (!out.empty()) {
        auto in = g.InNeighbors(v);
        EXPECT_NE(std::find(in.begin(), in.end(), out[0]), in.end());
      }
    }
  }
}

TEST(LtTriggeringTest, MemberFrequencyMatchesWeights) {
  // v = 2 with in-edges p(0,2) = 0.6, p(1,2) = 0.2: T includes 0 with
  // probability 0.6, 1 with 0.2, empty with 0.2.
  GraphBuilder b(3);
  b.AddEdge(0, 2, 0.6);
  b.AddEdge(1, 2, 0.2);
  Graph g = b.Build();
  LtTriggering dist(g);
  Rng rng(3);
  std::vector<NodeId> out;
  int count0 = 0, count1 = 0, empty = 0;
  const int samples = 100000;
  for (int i = 0; i < samples; ++i) {
    out.clear();
    dist.SampleTriggeringSet(2, rng, &out);
    if (out.empty()) {
      ++empty;
    } else if (out[0] == 0) {
      ++count0;
    } else {
      ++count1;
    }
  }
  EXPECT_NEAR(static_cast<double>(count0) / samples, 0.6, 0.01);
  EXPECT_NEAR(static_cast<double>(count1) / samples, 0.2, 0.01);
  EXPECT_NEAR(static_cast<double>(empty) / samples, 0.2, 0.01);
}

class TriggeringEquivalenceTest
    : public ::testing::TestWithParam<DiffusionModel> {};

TEST_P(TriggeringEquivalenceTest, CascadeMeanMatchesDirectSimulation) {
  // The live-edge (triggering) forward simulation must agree in
  // expectation with the direct IC/LT simulators.
  Graph g = GenerateBarabasiAlbert(120, 3);
  const DiffusionModel model = GetParam();
  std::shared_ptr<TriggeringDistribution> dist;
  if (model == DiffusionModel::kIndependentCascade) {
    dist = std::make_shared<IcTriggering>(g);
  } else {
    dist = std::make_shared<LtTriggering>(g);
  }

  std::vector<NodeId> seeds = {0, 1, 2};
  const int runs = 30000;
  Rng rng_a(4);
  uint64_t total_triggering = 0;
  for (int i = 0; i < runs; ++i) {
    total_triggering += SimulateTriggeringCascade(*dist, seeds, rng_a);
  }
  SpreadEstimator est(g, model, 2);
  double direct = est.Estimate(seeds, runs, 5);
  double triggering = static_cast<double>(total_triggering) / runs;
  EXPECT_NEAR(triggering, direct, 0.05 * std::max(direct, 1.0));
}

TEST_P(TriggeringEquivalenceTest, GenericRRSamplerMatchesSpecialized) {
  // n·Pr[v in R] must agree between the generic triggering sampler and
  // the specialized fast paths — compare spread estimates of seed sets.
  Graph g = GenerateErdosRenyi(100, 600);
  const DiffusionModel model = GetParam();
  std::shared_ptr<TriggeringDistribution> dist;
  if (model == DiffusionModel::kIndependentCascade) {
    dist = std::make_shared<IcTriggering>(g);
  } else {
    dist = std::make_shared<LtTriggering>(g);
  }

  TriggeringRRSampler generic(dist);
  auto specialized = MakeRRSampler(g, model);
  Rng rng_g(6), rng_s(7);
  RRCollection rr_g(g.num_nodes()), rr_s(g.num_nodes());
  generic.Generate(&rr_g, 40000, rng_g);
  specialized->Generate(&rr_s, 40000, rng_s);

  const std::vector<std::vector<NodeId>> seed_sets = {{0}, {1, 2, 3, 4}};
  for (const auto& seeds : seed_sets) {
    double a = rr_g.EstimateSpread(seeds);
    double b = rr_s.EstimateSpread(seeds);
    EXPECT_NEAR(a, b, 0.15 * std::max(b, 1.0))
        << DiffusionModelName(model);
  }
}

INSTANTIATE_TEST_SUITE_P(BothModels, TriggeringEquivalenceTest,
                         ::testing::Values(
                             DiffusionModel::kIndependentCascade,
                             DiffusionModel::kLinearThreshold),
                         [](const auto& info) {
                           return DiffusionModelName(info.param);
                         });

TEST(TriggeringRRSamplerTest, CustomDistributionPluggable) {
  // Proves the extension point: a "nobody influences anyone" model whose
  // RR sets are always singletons.
  class EmptyTriggering final : public TriggeringDistribution {
   public:
    explicit EmptyTriggering(const Graph& g) : graph_(g) {}
    uint64_t SampleTriggeringSet(NodeId v, Rng&,
                                 std::vector<NodeId>*) const override {
      return graph_.InDegree(v);
    }
    const Graph& graph() const override { return graph_; }

   private:
    const Graph& graph_;
  };

  Graph g = GenerateBarabasiAlbert(50, 3);
  auto dist = std::make_shared<EmptyTriggering>(g);
  TriggeringRRSampler sampler(dist);
  Rng rng(8);
  std::vector<NodeId> out;
  for (int i = 0; i < 50; ++i) {
    sampler.SampleInto(rng, &out);
    EXPECT_EQ(out.size(), 1u);
  }
}

}  // namespace
}  // namespace opim
