#include "rrset/rr_sampler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "diffusion/cascade.h"
#include "gen/generators.h"
#include "graph/graph.h"

namespace opim {
namespace {

Graph CertainPath(uint32_t n) {
  GraphBuilder b(n);
  for (NodeId v = 0; v + 1 < n; ++v) b.AddEdge(v, v + 1, 1.0);
  return b.Build();
}

class SamplerModelTest : public ::testing::TestWithParam<DiffusionModel> {};

TEST_P(SamplerModelTest, RRSetContainsItsRoot) {
  Graph g = GenerateBarabasiAlbert(100, 3);
  auto sampler = MakeRRSampler(g, GetParam());
  Rng rng(1);
  std::vector<NodeId> out;
  for (int i = 0; i < 200; ++i) {
    sampler->SampleInto(rng, &out);
    ASSERT_FALSE(out.empty());
    // The root is recorded first by both samplers.
    EXPECT_LT(out[0], g.num_nodes());
  }
}

TEST_P(SamplerModelTest, NodesAreDistinct) {
  Graph g = GenerateErdosRenyi(80, 400);
  auto sampler = MakeRRSampler(g, GetParam());
  Rng rng(2);
  std::vector<NodeId> out;
  for (int i = 0; i < 200; ++i) {
    sampler->SampleInto(rng, &out);
    std::vector<NodeId> sorted = out;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end())
        << "duplicate node in RR set";
  }
}

TEST_P(SamplerModelTest, IsolatedGraphGivesSingletons) {
  GraphBuilder b(10);
  Graph g = b.Build();
  auto sampler = MakeRRSampler(g, GetParam());
  Rng rng(3);
  std::vector<NodeId> out;
  for (int i = 0; i < 100; ++i) {
    uint64_t cost = sampler->SampleInto(rng, &out);
    EXPECT_EQ(out.size(), 1u);
    EXPECT_EQ(cost, 0u);
  }
}

TEST_P(SamplerModelTest, CertainPathRRSetIsPrefix) {
  // Reverse reachability on 0 -> 1 -> ... -> 9 with p = 1: the RR set of
  // root v is exactly {0, ..., v} under both models.
  Graph g = CertainPath(10);
  auto sampler = MakeRRSampler(g, GetParam());
  Rng rng(4);
  std::vector<NodeId> out;
  for (int i = 0; i < 300; ++i) {
    sampler->SampleInto(rng, &out);
    NodeId root = out[0];
    EXPECT_EQ(out.size(), root + 1u);
    std::vector<NodeId> sorted = out;
    std::sort(sorted.begin(), sorted.end());
    for (NodeId v = 0; v <= root; ++v) EXPECT_EQ(sorted[v], v);
  }
}

TEST_P(SamplerModelTest, CostEqualsTotalInDegreeOfMembers) {
  Graph g = GenerateErdosRenyi(60, 300);
  auto sampler = MakeRRSampler(g, GetParam());
  Rng rng(5);
  std::vector<NodeId> out;
  for (int i = 0; i < 100; ++i) {
    uint64_t cost = sampler->SampleInto(rng, &out);
    uint64_t expected = 0;
    for (NodeId v : out) expected += g.InDegree(v);
    EXPECT_EQ(cost, expected);
  }
}

TEST_P(SamplerModelTest, GenerateAppendsToCollection) {
  Graph g = GenerateBarabasiAlbert(50, 3);
  auto sampler = MakeRRSampler(g, GetParam());
  Rng rng(6);
  RRCollection rr(g.num_nodes());
  sampler->Generate(&rr, 25, rng);
  EXPECT_EQ(rr.num_sets(), 25u);
  sampler->Generate(&rr, 10, rng);
  EXPECT_EQ(rr.num_sets(), 35u);
  EXPECT_GT(rr.total_edges_examined(), 0u);
}

TEST_P(SamplerModelTest, DeterministicForSeed) {
  Graph g = GenerateBarabasiAlbert(100, 4);
  auto s1 = MakeRRSampler(g, GetParam());
  auto s2 = MakeRRSampler(g, GetParam());
  Rng r1(77), r2(77);
  std::vector<NodeId> o1, o2;
  for (int i = 0; i < 50; ++i) {
    s1->SampleInto(r1, &o1);
    s2->SampleInto(r2, &o2);
    EXPECT_EQ(o1, o2);
  }
}

INSTANTIATE_TEST_SUITE_P(BothModels, SamplerModelTest,
                         ::testing::Values(
                             DiffusionModel::kIndependentCascade,
                             DiffusionModel::kLinearThreshold),
                         [](const auto& info) {
                           return DiffusionModelName(info.param);
                         });

TEST(IcSamplerTest, EdgeInclusionFrequencyMatchesProbability) {
  // Two nodes, 0 -> 1 with p = 0.3. Conditioned on root = 1, the RR set
  // contains 0 with probability exactly 0.3.
  GraphBuilder b(2);
  b.AddEdge(0, 1, 0.3);
  Graph g = b.Build();
  IcRRSampler sampler(g);
  Rng rng(31);
  std::vector<NodeId> out;
  int root1 = 0, included = 0;
  for (int i = 0; i < 100000; ++i) {
    sampler.SampleInto(rng, &out);
    if (out[0] != 1) continue;
    ++root1;
    included += (out.size() == 2);
  }
  ASSERT_GT(root1, 40000);
  EXPECT_NEAR(static_cast<double>(included) / root1, 0.3, 0.01);
}

TEST(LtSamplerTest, WalkLengthIsGeometricOnConstantChain) {
  // Long chain with constant in-weight p = 0.5: from a root deep in the
  // chain, the walk continues with probability 0.5 per step, so
  // E[|R|] = 1 + 1 (expected extra steps of Geometric(1/2)) = 2 for roots
  // far from the source.
  const uint32_t n = 4000;
  GraphBuilder b(n);
  for (NodeId v = 0; v + 1 < n; ++v) b.AddEdge(v, v + 1, 0.5);
  Graph g = b.Build();
  LtRRSampler sampler(g);
  Rng rng(21);
  std::vector<NodeId> out;
  double total = 0.0;
  int counted = 0;
  for (int i = 0; i < 60000; ++i) {
    sampler.SampleInto(rng, &out);
    if (out[0] < 100) continue;  // skip roots near the source boundary
    total += static_cast<double>(out.size());
    ++counted;
  }
  ASSERT_GT(counted, 10000);
  EXPECT_NEAR(total / counted, 2.0, 0.05);
}

TEST(LtSamplerTest, RRSetIsAWalkPath) {
  // Under LT the RR set is a single reverse walk: on a graph where each
  // node has exactly one in-neighbor (a cycle), the set is a contiguous
  // backward arc.
  Graph g = GenerateCycle(12);  // WC weights: p = 1 on each edge
  LtRRSampler sampler(g);
  Rng rng(8);
  std::vector<NodeId> out;
  for (int i = 0; i < 100; ++i) {
    sampler.SampleInto(rng, &out);
    for (size_t j = 1; j < out.size(); ++j) {
      EXPECT_EQ(out[j], (out[j - 1] + 12 - 1) % 12) << "walk broke";
    }
  }
}

TEST(LtSamplerTest, CycleWalkTerminatesOnRevisit) {
  // All in-weights are 1 on the WC cycle, so the walk never stops by coin
  // flip; it must stop when it closes the cycle.
  Graph g = GenerateCycle(7);
  LtRRSampler sampler(g);
  Rng rng(9);
  std::vector<NodeId> out;
  for (int i = 0; i < 50; ++i) {
    sampler.SampleInto(rng, &out);
    EXPECT_EQ(out.size(), 7u);
  }
}

// The fundamental RIS identity (Lemma 3.1): n * Pr[S ∩ R != ∅] == σ(S).
// We verify the sampler against forward Monte-Carlo on a nontrivial graph.
class RisUnbiasednessTest : public ::testing::TestWithParam<DiffusionModel> {
};

TEST_P(RisUnbiasednessTest, MatchesForwardSimulation) {
  Graph g = GenerateErdosRenyi(150, 900);  // WC weights
  const DiffusionModel model = GetParam();

  auto sampler = MakeRRSampler(g, model);
  Rng rng(10);
  RRCollection rr(g.num_nodes());
  sampler->Generate(&rr, 60000, rng);

  SpreadEstimator estimator(g, model, 2);
  // A few seed sets of different sizes and influence.
  const std::vector<std::vector<NodeId>> seed_sets = {
      {0}, {1, 2, 3}, {10, 20, 30, 40, 50}, {149}};
  for (const auto& seeds : seed_sets) {
    double ris = rr.EstimateSpread(seeds);
    double mc = estimator.Estimate(seeds, 40000, 11);
    EXPECT_NEAR(ris, mc, 0.15 * std::max(mc, 1.0))
        << DiffusionModelName(model) << " seeds of size " << seeds.size();
  }
}

INSTANTIATE_TEST_SUITE_P(BothModels, RisUnbiasednessTest,
                         ::testing::Values(
                             DiffusionModel::kIndependentCascade,
                             DiffusionModel::kLinearThreshold),
                         [](const auto& info) {
                           return DiffusionModelName(info.param);
                         });

}  // namespace
}  // namespace opim
