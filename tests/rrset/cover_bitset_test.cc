// CoverBitset semantics plus bit-identity of the scalar and AVX2 counting
// kernels on randomized postings — the differential guarantee that lets
// runtime dispatch pick either path without changing any selection result.

#include "rrset/cover_bitset.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "support/random.h"

namespace opim {
namespace {

/// Restores kAuto dispatch even when an assertion fails mid-test.
struct SimdModeGuard {
  ~SimdModeGuard() { SetCoverageSimdMode(SimdMode::kAuto); }
};

TEST(CoverBitsetTest, ResetClearsAndSizes) {
  CoverBitset bits;
  bits.Reset(130);
  EXPECT_EQ(bits.num_bits(), 130u);
  EXPECT_EQ(bits.num_words(), 3u);
  for (uint64_t i = 0; i < 130; ++i) EXPECT_FALSE(bits.Test(i));
  bits.Set(0);
  bits.Set(64);
  bits.Set(129);
  EXPECT_TRUE(bits.Test(0));
  EXPECT_TRUE(bits.Test(64));
  EXPECT_TRUE(bits.Test(129));
  EXPECT_FALSE(bits.Test(1));
  bits.Reset(130);
  for (uint64_t i = 0; i < 130; ++i) EXPECT_FALSE(bits.Test(i));
}

TEST(CoverBitsetTest, ForEachNewlyCoveredIdsReportsOnlyFreshBits) {
  CoverBitset bits;
  bits.Reset(200);
  bits.Set(5);
  bits.Set(70);
  const std::vector<RRId> ids = {3, 5, 70, 71, 199};
  std::vector<RRId> fresh;
  ForEachNewlyCoveredIds(ids, bits.words(),
                         [&](RRId id) { fresh.push_back(id); });
  EXPECT_EQ(fresh, (std::vector<RRId>{3, 71, 199}));
  for (RRId id : ids) EXPECT_TRUE(bits.Test(id));
  // Second pass: everything already covered.
  fresh.clear();
  ForEachNewlyCoveredIds(ids, bits.words(),
                         [&](RRId id) { fresh.push_back(id); });
  EXPECT_TRUE(fresh.empty());
}

TEST(CoverBitsetTest, ForEachNewlyCoveredBlocksMatchesIdSemantics) {
  CoverBitset a, b;
  a.Reset(256);
  b.Reset(256);
  a.Set(65);
  b.Set(65);
  // Ids 64..66 and 130 as one mask per word.
  const std::vector<RRId> ids = {64, 65, 66, 130};
  const std::vector<uint32_t> block_words = {1, 2};
  const std::vector<uint64_t> block_masks = {0x7ull, 0x4ull};
  std::vector<RRId> fresh_ids, fresh_blocks;
  ForEachNewlyCoveredIds(ids, a.words(),
                         [&](RRId id) { fresh_ids.push_back(id); });
  ForEachNewlyCoveredBlocks(block_words, block_masks, b.words(),
                            [&](RRId id) { fresh_blocks.push_back(id); });
  EXPECT_EQ(fresh_ids, fresh_blocks);
  EXPECT_EQ(fresh_blocks, (std::vector<RRId>{64, 66, 130}));
  for (uint64_t i = 0; i < 256; ++i) EXPECT_EQ(a.Test(i), b.Test(i));
}

/// Brute-force oracle for CountUncoveredIds.
uint64_t BruteCountIds(const std::vector<RRId>& ids, const CoverBitset& bits) {
  uint64_t c = 0;
  for (RRId id : ids) c += bits.Test(id) ? 0 : 1;
  return c;
}

/// Brute-force oracle for CountUncoveredBlocks.
uint64_t BruteCountBlocks(const std::vector<uint32_t>& words,
                          const std::vector<uint64_t>& masks,
                          const CoverBitset& bits) {
  uint64_t c = 0;
  for (size_t i = 0; i < words.size(); ++i) {
    c += std::popcount(masks[i] & ~bits.words()[words[i]]);
  }
  return c;
}

struct RandomCase {
  CoverBitset bits;
  std::vector<RRId> ids;
  std::vector<uint32_t> block_words;
  std::vector<uint64_t> block_masks;
};

RandomCase MakeRandomCase(Rng& rng, uint64_t num_bits) {
  RandomCase c;
  c.bits.Reset(num_bits);
  const uint64_t set_bits = rng.UniformBelow(num_bits);
  for (uint64_t i = 0; i < set_bits; ++i) {
    c.bits.Set(rng.UniformBelow(num_bits));
  }
  const uint32_t len = rng.UniformBelow(300);
  for (uint32_t i = 0; i < len; ++i) {
    c.ids.push_back(rng.UniformBelow(num_bits));
  }
  std::sort(c.ids.begin(), c.ids.end());
  c.ids.erase(std::unique(c.ids.begin(), c.ids.end()), c.ids.end());
  uint32_t prev = UINT32_MAX;
  for (RRId id : c.ids) {  // derive the block rep from the same ids
    const uint32_t w = id >> 6;
    if (w != prev) {
      c.block_words.push_back(w);
      c.block_masks.push_back(0);
      prev = w;
    }
    c.block_masks.back() |= uint64_t{1} << (id & 63);
  }
  return c;
}

TEST(CoverKernelTest, ScalarMatchesBruteForce) {
  SimdModeGuard guard;
  SetCoverageSimdMode(SimdMode::kScalar);
  Rng rng(11, 0x5ca1a);
  for (int trial = 0; trial < 200; ++trial) {
    RandomCase c = MakeRandomCase(rng, 64 + rng.UniformBelow(2048));
    EXPECT_EQ(CountUncoveredIds(c.ids, c.bits.words()),
              BruteCountIds(c.ids, c.bits));
    EXPECT_EQ(CountUncoveredBlocks(c.block_words, c.block_masks,
                                   c.bits.words()),
              BruteCountBlocks(c.block_words, c.block_masks, c.bits));
  }
}

TEST(CoverKernelTest, Avx2BitIdenticalToScalar) {
  if (!CoverageSimdAvailable()) {
    GTEST_SKIP() << "AVX2 kernels not compiled in or not supported";
  }
  SimdModeGuard guard;
  Rng rng(13, 0xa5b2);
  for (int trial = 0; trial < 400; ++trial) {
    RandomCase c = MakeRandomCase(rng, 64 + rng.UniformBelow(4096));
    SetCoverageSimdMode(SimdMode::kScalar);
    const uint64_t ids_scalar = CountUncoveredIds(c.ids, c.bits.words());
    const uint64_t blk_scalar =
        CountUncoveredBlocks(c.block_words, c.block_masks, c.bits.words());
    SetCoverageSimdMode(SimdMode::kAvx2);
    EXPECT_EQ(CountUncoveredIds(c.ids, c.bits.words()), ids_scalar)
        << "trial " << trial;
    EXPECT_EQ(CountUncoveredBlocks(c.block_words, c.block_masks,
                                   c.bits.words()),
              blk_scalar)
        << "trial " << trial;
  }
}

TEST(CoverKernelTest, TailLengthsCovered) {
  // 0..12 ids hit every remainder of the 4-wide AVX2 main loop.
  SimdModeGuard guard;
  CoverBitset bits;
  bits.Reset(256);
  for (uint64_t i = 0; i < 256; i += 3) bits.Set(i);
  std::vector<RRId> ids;
  for (uint32_t len = 0; len <= 12; ++len) {
    ids.clear();
    for (uint32_t i = 0; i < len; ++i) ids.push_back(i * 17 % 256);
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    SetCoverageSimdMode(SimdMode::kScalar);
    const uint64_t scalar = CountUncoveredIds(ids, bits.words());
    EXPECT_EQ(scalar, BruteCountIds(ids, bits));
    if (CoverageSimdAvailable()) {
      SetCoverageSimdMode(SimdMode::kAvx2);
      EXPECT_EQ(CountUncoveredIds(ids, bits.words()), scalar)
          << "len " << len;
    }
  }
}

TEST(CoverKernelTest, DispatchReportsConsistentState) {
  SimdModeGuard guard;
  SetCoverageSimdMode(SimdMode::kScalar);
  EXPECT_EQ(EffectiveCoverageSimd(), SimdMode::kScalar);
  EXPECT_STREQ(ActiveCoverageKernelName(), "scalar");
  SetCoverageSimdMode(SimdMode::kAuto);
  const SimdMode eff = EffectiveCoverageSimd();
  EXPECT_NE(eff, SimdMode::kAuto);
  if (CoverageSimdAvailable()) {
    EXPECT_EQ(eff, SimdMode::kAvx2);
    EXPECT_STREQ(ActiveCoverageKernelName(), "avx2");
  } else {
    EXPECT_EQ(eff, SimdMode::kScalar);
  }
  // Forcing kAvx2 without support degrades to scalar instead of crashing.
  SetCoverageSimdMode(SimdMode::kAvx2);
  if (!CoverageSimdAvailable()) {
    EXPECT_EQ(EffectiveCoverageSimd(), SimdMode::kScalar);
  }
}

}  // namespace
}  // namespace opim
