#include "rrset/rr_collection.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "support/thread_pool.h"

namespace opim {
namespace {

TEST(RRCollectionTest, EmptyCollection) {
  RRCollection rr(5);
  EXPECT_EQ(rr.num_sets(), 0u);
  EXPECT_EQ(rr.num_nodes(), 5u);
  EXPECT_EQ(rr.total_size(), 0u);
  EXPECT_EQ(rr.total_edges_examined(), 0u);
  std::vector<NodeId> seeds = {0};
  EXPECT_EQ(rr.CoverageOf(seeds), 0u);
  EXPECT_EQ(rr.EstimateSpread(seeds), 0.0);
}

TEST(RRCollectionTest, AddSetStoresNodesAndCost) {
  RRCollection rr(5);
  std::vector<NodeId> set1 = {0, 2, 4};
  RRId id = rr.AddSet(set1, 7);
  EXPECT_EQ(id, 0u);
  EXPECT_EQ(rr.num_sets(), 1u);
  EXPECT_EQ(rr.total_size(), 3u);
  EXPECT_EQ(rr.total_edges_examined(), 7u);
  EXPECT_EQ(rr.SetSize(0), 3u);
  EXPECT_EQ(rr.DecodeSet(0), set1);
  EXPECT_EQ(rr.SetCost(0), 7u);
}

TEST(RRCollectionTest, AddSetSortsAndDeduplicates) {
  // Members are stored delta-encoded over the sorted unique list; callers
  // read them back sorted regardless of input order.
  RRCollection rr(8);
  rr.AddSet(std::vector<NodeId>{5, 1, 7, 1, 5}, 3);
  EXPECT_EQ(rr.SetSize(0), 3u);
  EXPECT_EQ(rr.DecodeSet(0), (std::vector<NodeId>{1, 5, 7}));
  EXPECT_EQ(rr.total_size(), 3u);
}

TEST(RRCollectionTest, InlineSlotsRoundTrip) {
  // Empty and singleton sets live in the slot word itself (no pool bytes).
  RRCollection rr(1u << 20);
  rr.AddSet(std::vector<NodeId>{}, 0);
  rr.AddSet(std::vector<NodeId>{(1u << 20) - 1}, 1);
  rr.AddSet(std::vector<NodeId>{0}, 1);
  EXPECT_EQ(rr.SetSize(0), 0u);
  EXPECT_EQ(rr.SetSize(1), 1u);
  EXPECT_EQ(rr.SetSize(2), 1u);
  EXPECT_TRUE(rr.DecodeSet(0).empty());
  EXPECT_EQ(rr.DecodeSet(1), (std::vector<NodeId>{(1u << 20) - 1}));
  EXPECT_EQ(rr.DecodeSet(2), (std::vector<NodeId>{0}));
  EXPECT_EQ(rr.CompressedMemberBytes(), 0u);
}

TEST(RRCollectionTest, InvertedIndexTracksMembership) {
  RRCollection rr(4);
  rr.AddSet(std::vector<NodeId>{0, 1}, 1);
  rr.AddSet(std::vector<NodeId>{1, 2}, 1);
  rr.AddSet(std::vector<NodeId>{1}, 1);
  EXPECT_EQ(rr.CoveringCount(0), 1u);
  EXPECT_EQ(rr.CoveringCount(1), 3u);
  EXPECT_EQ(rr.CoveringCount(2), 1u);
  EXPECT_EQ(rr.CoveringCount(3), 0u);
  EXPECT_EQ(rr.DecodeCovering(1), (std::vector<RRId>{0, 1, 2}));
}

TEST(RRCollectionTest, CoverageCountsEachSetOnce) {
  RRCollection rr(4);
  rr.AddSet(std::vector<NodeId>{0, 1, 2}, 1);  // covered by any of 0,1,2
  rr.AddSet(std::vector<NodeId>{3}, 1);
  std::vector<NodeId> seeds = {0, 1};  // both hit set 0
  EXPECT_EQ(rr.CoverageOf(seeds), 1u);
  std::vector<NodeId> all = {0, 3};
  EXPECT_EQ(rr.CoverageOf(all), 2u);
}

TEST(RRCollectionTest, CoverageHandlesDuplicateSeeds) {
  RRCollection rr(3);
  rr.AddSet(std::vector<NodeId>{1}, 1);
  std::vector<NodeId> seeds = {1, 1, 1};
  EXPECT_EQ(rr.CoverageOf(seeds), 1u);
}

TEST(RRCollectionTest, RepeatedCoverageQueriesIndependent) {
  RRCollection rr(3);
  rr.AddSet(std::vector<NodeId>{0}, 1);
  rr.AddSet(std::vector<NodeId>{1}, 1);
  std::vector<NodeId> s0 = {0}, s1 = {1};
  // The bitset scratch must reset logically between queries.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rr.CoverageOf(s0), 1u);
    EXPECT_EQ(rr.CoverageOf(s1), 1u);
  }
}

TEST(RRCollectionTest, CoverageAfterGrowth) {
  RRCollection rr(3);
  rr.AddSet(std::vector<NodeId>{0}, 1);
  std::vector<NodeId> seeds = {0};
  EXPECT_EQ(rr.CoverageOf(seeds), 1u);
  rr.AddSet(std::vector<NodeId>{0, 1}, 1);
  rr.AddSet(std::vector<NodeId>{2}, 1);
  EXPECT_EQ(rr.CoverageOf(seeds), 2u);  // scratch grew with the sets
}

TEST(RRCollectionTest, EstimateSpreadScalesCoverage) {
  RRCollection rr(10);
  rr.AddSet(std::vector<NodeId>{0}, 1);
  rr.AddSet(std::vector<NodeId>{1}, 1);
  rr.AddSet(std::vector<NodeId>{0, 1}, 1);
  rr.AddSet(std::vector<NodeId>{2}, 1);
  std::vector<NodeId> seeds = {0};
  // Λ = 2 of θ = 4 sets, n = 10 -> estimate 5.
  EXPECT_DOUBLE_EQ(rr.EstimateSpread(seeds), 5.0);
}

TEST(RRCollectionTest, EmptySetAllowed) {
  // An RR set is never empty in practice (it contains its root), but the
  // container itself tolerates it.
  RRCollection rr(2);
  rr.AddSet(std::vector<NodeId>{}, 0);
  EXPECT_EQ(rr.num_sets(), 1u);
  EXPECT_EQ(rr.total_size(), 0u);
  std::vector<NodeId> seeds = {0, 1};
  EXPECT_EQ(rr.CoverageOf(seeds), 0u);
}

TEST(RRCollectionTest, DroppedCostColumn) {
  RRCollection rr(4, RRStoreOptions{.retain_set_costs = false});
  EXPECT_FALSE(rr.retains_set_costs());
  rr.AddSet(std::vector<NodeId>{0, 1}, 9);
  // Aggregate γ survives even without the per-set column.
  EXPECT_EQ(rr.total_edges_examined(), 9u);
  EXPECT_EQ(rr.DecodeSet(0), (std::vector<NodeId>{0, 1}));
}

TEST(RRCollectionTest, ForEachAccessorsMatchDecode) {
  // ForEachMember / ForEachCovering are the zero-allocation hot-path
  // views; they must agree with the materializing helpers for both
  // posting representations (high-frequency nodes flip to blocks).
  const uint32_t n = 40;
  RRCollection rr(n);
  for (uint32_t i = 0; i < 600; ++i) {
    std::vector<NodeId> s = {0, static_cast<NodeId>(i % n),
                             static_cast<NodeId>((i * 11 + 3) % n)};
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
    rr.AddSet(s, 1);
  }
  for (RRId id = 0; id < rr.num_sets(); ++id) {
    std::vector<NodeId> walked;
    rr.ForEachMember(id, [&](NodeId v) { walked.push_back(v); });
    EXPECT_EQ(walked, rr.DecodeSet(id)) << "set " << id;
  }
  for (NodeId v = 0; v < n; ++v) {
    std::vector<RRId> walked;
    rr.ForEachCovering(v, [&](RRId id) { walked.push_back(id); });
    const std::vector<RRId> decoded = rr.DecodeCovering(v);
    EXPECT_EQ(walked, decoded) << "node " << v;
    EXPECT_EQ(rr.CoveringCount(v), decoded.size()) << "node " << v;
    EXPECT_TRUE(std::is_sorted(decoded.begin(), decoded.end()));
  }
}

/// Expects identical sets, costs, and inverted index in both collections.
void ExpectEquivalent(const RRCollection& a, const RRCollection& b) {
  ASSERT_EQ(a.num_sets(), b.num_sets());
  ASSERT_EQ(a.total_size(), b.total_size());
  ASSERT_EQ(a.total_edges_examined(), b.total_edges_examined());
  for (RRId id = 0; id < a.num_sets(); ++id) {
    EXPECT_EQ(a.DecodeSet(id), b.DecodeSet(id)) << "set " << id;
    if (a.retains_set_costs() && b.retains_set_costs()) {
      EXPECT_EQ(a.SetCost(id), b.SetCost(id));
    }
  }
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    EXPECT_EQ(a.DecodeCovering(v), b.DecodeCovering(v)) << "node " << v;
  }
}

/// Packs explicit sets into a single RRBatch shard (unit cost each).
RRBatch PackShard(const std::vector<std::vector<NodeId>>& sets) {
  RRBatch shard;
  for (const auto& s : sets) {
    shard.sets.emplace_back(static_cast<uint32_t>(s.size()), 1);
    shard.pool.insert(shard.pool.end(), s.begin(), s.end());
  }
  return shard;
}

TEST(RRCollectionBatchTest, SingleShardMatchesAddSetLoop) {
  const std::vector<std::vector<NodeId>> sets = {
      {0, 1}, {1, 2}, {1}, {3, 0}, {}, {2}};
  RRCollection incremental(4);
  for (const auto& s : sets) incremental.AddSet(s, 1);

  RRCollection batched(4);
  std::vector<RRBatch> shards;
  shards.push_back(PackShard(sets));
  batched.AddBatch(std::move(shards));
  ExpectEquivalent(incremental, batched);
}

TEST(RRCollectionBatchTest, MultiShardConcatenatesInShardOrder) {
  RRCollection incremental(5);
  incremental.AddSet(std::vector<NodeId>{0, 4}, 1);
  incremental.AddSet(std::vector<NodeId>{1}, 1);
  incremental.AddSet(std::vector<NodeId>{4, 2}, 1);
  incremental.AddSet(std::vector<NodeId>{3, 1}, 1);

  RRCollection batched(5);
  std::vector<RRBatch> shards;
  shards.push_back(PackShard({{0, 4}, {1}}));
  shards.push_back(PackShard({{4, 2}, {3, 1}}));
  batched.AddBatch(std::move(shards));
  ExpectEquivalent(incremental, batched);
}

TEST(RRCollectionBatchTest, SuccessiveBatchesAppend) {
  RRCollection incremental(4);
  RRCollection batched(4);
  for (int round = 0; round < 3; ++round) {
    std::vector<std::vector<NodeId>> sets;
    for (int i = 0; i < 10; ++i) {
      sets.push_back({static_cast<NodeId>((round + i) % 4),
                      static_cast<NodeId>((round * 3 + i * 7) % 4)});
      std::sort(sets.back().begin(), sets.back().end());
      sets.back().erase(
          std::unique(sets.back().begin(), sets.back().end()),
          sets.back().end());
      incremental.AddSet(sets.back(), 1);
    }
    std::vector<RRBatch> shards;
    shards.push_back(PackShard(sets));
    batched.AddBatch(std::move(shards));
  }
  ExpectEquivalent(incremental, batched);
}

TEST(RRCollectionBatchTest, CompressedStorageBeatsRawForDenseSets) {
  // Clustered ids delta-encode to ~1 byte per member; the compressed pool
  // must come in well under the 4 bytes/member raw footprint and decode
  // back exactly.
  const uint32_t n = 4096;
  std::vector<std::vector<NodeId>> sets;
  for (uint32_t s = 0; s < 64; ++s) {
    std::vector<NodeId> members;
    for (uint32_t j = 0; j < 96; ++j) {
      members.push_back((s * 17 + j * 3) % n);
    }
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()),
                  members.end());
    sets.push_back(std::move(members));
  }
  RRCollection rr(n);
  std::vector<RRBatch> shards;
  shards.push_back(PackShard(sets));
  rr.AddBatch(std::move(shards));
  ASSERT_EQ(rr.num_sets(), sets.size());
  for (RRId id = 0; id < rr.num_sets(); ++id) {
    EXPECT_EQ(rr.DecodeSet(id), sets[id]) << "set " << id;
  }
  EXPECT_GT(rr.CompressedMemberBytes(), 0u);
  EXPECT_LT(rr.CompressedMemberBytes(), rr.RawMemberBytes() / 2);
  EXPECT_EQ(rr.RawMemberBytes(), rr.total_size() * sizeof(NodeId));
}

TEST(RRCollectionBatchTest, EmptyAndNoopShards) {
  RRCollection rr(3);
  rr.AddBatch({});  // no shards at all
  EXPECT_EQ(rr.num_sets(), 0u);
  std::vector<RRBatch> shards(2);  // shards with no sets
  rr.AddBatch(std::move(shards));
  EXPECT_EQ(rr.num_sets(), 0u);
  EXPECT_EQ(rr.CoveringCount(0), 0u);
}

TEST(RRCollectionBatchTest, ParallelRebuildMatchesSerial) {
  // Above the size cutoff AddBatch rebuilds the inverted index on the
  // pool; the chunked counting sort must produce exactly the serial
  // layout.
  const uint32_t n = 400;
  const int num_sets = 30000;  // ~90k pooled nodes > the 2^16 cutoff
  std::vector<std::vector<NodeId>> sets;
  sets.reserve(num_sets);
  for (int i = 0; i < num_sets; ++i) {
    std::vector<NodeId> s = {static_cast<NodeId>(i % n),
                             static_cast<NodeId>((i * 13 + 5) % n),
                             static_cast<NodeId>((i * 61 + 2) % n)};
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
    sets.push_back(std::move(s));
  }
  RRCollection serial(n), parallel(n);
  {
    std::vector<RRBatch> shards;
    shards.push_back(PackShard(sets));
    serial.AddBatch(std::move(shards));  // no pool: serial rebuild
  }
  {
    ThreadPool pool(4);
    std::vector<RRBatch> shards;
    shards.push_back(PackShard(sets));
    parallel.AddBatch(std::move(shards), &pool);
  }
  ExpectEquivalent(serial, parallel);
}

TEST(RRCollectionBatchTest, AddSetAfterBatchKeepsIndexFresh) {
  // AddSet defers the index rebuild; the next covering query must observe
  // both the batched and the incrementally added sets.
  RRCollection rr(3);
  std::vector<RRBatch> shards;
  shards.push_back(PackShard({{0, 1}}));
  rr.AddBatch(std::move(shards));
  EXPECT_EQ(rr.CoveringCount(1), 1u);
  rr.AddSet(std::vector<NodeId>{1, 2}, 1);
  EXPECT_EQ(rr.CoveringCount(1), 2u);
  EXPECT_EQ(rr.DecodeCovering(1), (std::vector<RRId>{0, 1}));
  EXPECT_EQ(rr.CoveringCount(2), 1u);
}

TEST(RRCollectionTest, ManySetsStressInvertedIndex) {
  const uint32_t n = 50;
  RRCollection rr(n);
  for (uint32_t i = 0; i < 1000; ++i) {
    std::vector<NodeId> set = {i % n, (i * 7 + 1) % n};
    rr.AddSet(set, 2);
  }
  // Sum of per-node cover list lengths equals total stored nodes.
  uint64_t total = 0;
  for (NodeId v = 0; v < n; ++v) total += rr.CoveringCount(v);
  EXPECT_EQ(total, rr.total_size());
}

TEST(RRCollectionTest, MemoryUsageReflectsCompressedFootprint) {
  // MemoryUsage() is what the PR 4 budget meters; it must track the
  // compressed pool, not the raw member bytes.
  const uint32_t n = 2000;
  RRCollection rr(n);
  for (uint32_t i = 0; i < 500; ++i) {
    std::vector<NodeId> s;
    for (uint32_t j = 0; j < 20; ++j) s.push_back((i * 37 + j * 7) % n);
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
    rr.AddSet(s, 1);
  }
  EXPECT_GE(rr.MemoryUsage(), rr.CompressedMemberBytes());
  EXPECT_LT(rr.CompressedMemberBytes(), rr.RawMemberBytes());
}

}  // namespace
}  // namespace opim
