#include "rrset/rr_collection.h"

#include <gtest/gtest.h>

#include <vector>

namespace opim {
namespace {

TEST(RRCollectionTest, EmptyCollection) {
  RRCollection rr(5);
  EXPECT_EQ(rr.num_sets(), 0u);
  EXPECT_EQ(rr.num_nodes(), 5u);
  EXPECT_EQ(rr.total_size(), 0u);
  EXPECT_EQ(rr.total_edges_examined(), 0u);
  std::vector<NodeId> seeds = {0};
  EXPECT_EQ(rr.CoverageOf(seeds), 0u);
  EXPECT_EQ(rr.EstimateSpread(seeds), 0.0);
}

TEST(RRCollectionTest, AddSetStoresNodesAndCost) {
  RRCollection rr(5);
  std::vector<NodeId> set1 = {0, 2, 4};
  RRId id = rr.AddSet(set1, 7);
  EXPECT_EQ(id, 0u);
  EXPECT_EQ(rr.num_sets(), 1u);
  EXPECT_EQ(rr.total_size(), 3u);
  EXPECT_EQ(rr.total_edges_examined(), 7u);
  auto s = rr.Set(0);
  EXPECT_EQ(std::vector<NodeId>(s.begin(), s.end()), set1);
}

TEST(RRCollectionTest, InvertedIndexTracksMembership) {
  RRCollection rr(4);
  rr.AddSet(std::vector<NodeId>{0, 1}, 1);
  rr.AddSet(std::vector<NodeId>{1, 2}, 1);
  rr.AddSet(std::vector<NodeId>{1}, 1);
  EXPECT_EQ(rr.SetsCovering(0).size(), 1u);
  EXPECT_EQ(rr.SetsCovering(1).size(), 3u);
  EXPECT_EQ(rr.SetsCovering(2).size(), 1u);
  EXPECT_EQ(rr.SetsCovering(3).size(), 0u);
  EXPECT_EQ(rr.SetsCovering(1)[2], 2u);  // ascending ids
}

TEST(RRCollectionTest, CoverageCountsEachSetOnce) {
  RRCollection rr(4);
  rr.AddSet(std::vector<NodeId>{0, 1, 2}, 1);  // covered by any of 0,1,2
  rr.AddSet(std::vector<NodeId>{3}, 1);
  std::vector<NodeId> seeds = {0, 1};  // both hit set 0
  EXPECT_EQ(rr.CoverageOf(seeds), 1u);
  std::vector<NodeId> all = {0, 3};
  EXPECT_EQ(rr.CoverageOf(all), 2u);
}

TEST(RRCollectionTest, CoverageHandlesDuplicateSeeds) {
  RRCollection rr(3);
  rr.AddSet(std::vector<NodeId>{1}, 1);
  std::vector<NodeId> seeds = {1, 1, 1};
  EXPECT_EQ(rr.CoverageOf(seeds), 1u);
}

TEST(RRCollectionTest, RepeatedCoverageQueriesIndependent) {
  RRCollection rr(3);
  rr.AddSet(std::vector<NodeId>{0}, 1);
  rr.AddSet(std::vector<NodeId>{1}, 1);
  std::vector<NodeId> s0 = {0}, s1 = {1};
  // The epoch-stamp scratch must reset logically between queries.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rr.CoverageOf(s0), 1u);
    EXPECT_EQ(rr.CoverageOf(s1), 1u);
  }
}

TEST(RRCollectionTest, CoverageAfterGrowth) {
  RRCollection rr(3);
  rr.AddSet(std::vector<NodeId>{0}, 1);
  std::vector<NodeId> seeds = {0};
  EXPECT_EQ(rr.CoverageOf(seeds), 1u);
  rr.AddSet(std::vector<NodeId>{0, 1}, 1);
  rr.AddSet(std::vector<NodeId>{2}, 1);
  EXPECT_EQ(rr.CoverageOf(seeds), 2u);  // scratch grew with the sets
}

TEST(RRCollectionTest, EstimateSpreadScalesCoverage) {
  RRCollection rr(10);
  rr.AddSet(std::vector<NodeId>{0}, 1);
  rr.AddSet(std::vector<NodeId>{1}, 1);
  rr.AddSet(std::vector<NodeId>{0, 1}, 1);
  rr.AddSet(std::vector<NodeId>{2}, 1);
  std::vector<NodeId> seeds = {0};
  // Λ = 2 of θ = 4 sets, n = 10 -> estimate 5.
  EXPECT_DOUBLE_EQ(rr.EstimateSpread(seeds), 5.0);
}

TEST(RRCollectionTest, EmptySetAllowed) {
  // An RR set is never empty in practice (it contains its root), but the
  // container itself tolerates it.
  RRCollection rr(2);
  rr.AddSet(std::vector<NodeId>{}, 0);
  EXPECT_EQ(rr.num_sets(), 1u);
  EXPECT_EQ(rr.total_size(), 0u);
  std::vector<NodeId> seeds = {0, 1};
  EXPECT_EQ(rr.CoverageOf(seeds), 0u);
}

TEST(RRCollectionTest, ManySetsStressInvertedIndex) {
  const uint32_t n = 50;
  RRCollection rr(n);
  for (uint32_t i = 0; i < 1000; ++i) {
    std::vector<NodeId> set = {i % n, (i * 7 + 1) % n};
    rr.AddSet(set, 2);
  }
  // Sum of per-node cover list lengths equals total stored nodes.
  uint64_t total = 0;
  for (NodeId v = 0; v < n; ++v) total += rr.SetsCovering(v).size();
  EXPECT_EQ(total, rr.total_size());
}

}  // namespace
}  // namespace opim
