#include "rrset/parallel_generate.h"

#include <gtest/gtest.h>

#include "gen/generators.h"

namespace opim {
namespace {

class ParallelGenerateModelTest
    : public ::testing::TestWithParam<DiffusionModel> {};

TEST_P(ParallelGenerateModelTest, ProducesRequestedCount) {
  Graph g = GenerateBarabasiAlbert(200, 4);
  RRCollection rr(g.num_nodes());
  ParallelGenerate(g, GetParam(), &rr, 1000, /*seed=*/1, /*threads=*/4);
  EXPECT_EQ(rr.num_sets(), 1000u);
  EXPECT_GT(rr.total_size(), 1000u);  // roots alone give >= 1 node/set
  EXPECT_GT(rr.total_edges_examined(), 0u);
}

TEST_P(ParallelGenerateModelTest, DeterministicForFixedSeedAndThreads) {
  Graph g = GenerateBarabasiAlbert(200, 4);
  RRCollection a(g.num_nodes()), b(g.num_nodes());
  ParallelGenerate(g, GetParam(), &a, 500, 7, 3);
  ParallelGenerate(g, GetParam(), &b, 500, 7, 3);
  ASSERT_EQ(a.num_sets(), b.num_sets());
  ASSERT_EQ(a.total_size(), b.total_size());
  for (RRId id = 0; id < a.num_sets(); ++id) {
    auto sa = a.Set(id), sb = b.Set(id);
    ASSERT_EQ(sa.size(), sb.size()) << "set " << id;
    for (size_t i = 0; i < sa.size(); ++i) EXPECT_EQ(sa[i], sb[i]);
    EXPECT_EQ(a.SetCost(id), b.SetCost(id));
  }
}

TEST_P(ParallelGenerateModelTest, StatisticallyEquivalentAcrossThreads) {
  // Different thread counts give different streams but the same
  // distribution: spread estimates of a fixed seed set must agree.
  Graph g = GenerateErdosRenyi(150, 900);
  RRCollection serial(g.num_nodes()), parallel4(g.num_nodes());
  ParallelGenerate(g, GetParam(), &serial, 40000, 11, 1);
  ParallelGenerate(g, GetParam(), &parallel4, 40000, 11, 4);
  std::vector<NodeId> seeds = {0, 10, 20};
  double a = serial.EstimateSpread(seeds);
  double b = parallel4.EstimateSpread(seeds);
  EXPECT_NEAR(a, b, 0.15 * std::max(a, 1.0));
}

TEST_P(ParallelGenerateModelTest, ZeroCountIsNoop) {
  Graph g = GenerateBarabasiAlbert(50, 3);
  RRCollection rr(g.num_nodes());
  ParallelGenerate(g, GetParam(), &rr, 0, 1, 4);
  EXPECT_EQ(rr.num_sets(), 0u);
}

TEST_P(ParallelGenerateModelTest, MoreThreadsThanSamples) {
  Graph g = GenerateBarabasiAlbert(50, 3);
  RRCollection rr(g.num_nodes());
  ParallelGenerate(g, GetParam(), &rr, 3, 1, 16);
  EXPECT_EQ(rr.num_sets(), 3u);
}

INSTANTIATE_TEST_SUITE_P(BothModels, ParallelGenerateModelTest,
                         ::testing::Values(
                             DiffusionModel::kIndependentCascade,
                             DiffusionModel::kLinearThreshold),
                         [](const auto& info) {
                           return DiffusionModelName(info.param);
                         });

}  // namespace
}  // namespace opim
