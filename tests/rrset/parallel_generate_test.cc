#include "rrset/parallel_generate.h"

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "support/thread_pool.h"

namespace opim {
namespace {

/// True iff both collections hold the same sets in the same order with
/// the same costs and the same inverted index.
void ExpectSameCollections(const RRCollection& a, const RRCollection& b) {
  ASSERT_EQ(a.num_sets(), b.num_sets());
  ASSERT_EQ(a.total_size(), b.total_size());
  ASSERT_EQ(a.total_edges_examined(), b.total_edges_examined());
  for (RRId id = 0; id < a.num_sets(); ++id) {
    EXPECT_EQ(a.DecodeSet(id), b.DecodeSet(id)) << "set " << id;
    if (a.retains_set_costs() && b.retains_set_costs()) {
      EXPECT_EQ(a.SetCost(id), b.SetCost(id));
    }
  }
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    EXPECT_EQ(a.DecodeCovering(v), b.DecodeCovering(v)) << "node " << v;
  }
}

class ParallelGenerateModelTest
    : public ::testing::TestWithParam<DiffusionModel> {};

TEST_P(ParallelGenerateModelTest, ProducesRequestedCount) {
  Graph g = GenerateBarabasiAlbert(200, 4);
  RRCollection rr(g.num_nodes());
  ParallelGenerate(g, GetParam(), &rr, 1000, /*seed=*/1, /*threads=*/4);
  EXPECT_EQ(rr.num_sets(), 1000u);
  EXPECT_GT(rr.total_size(), 1000u);  // roots alone give >= 1 node/set
  EXPECT_GT(rr.total_edges_examined(), 0u);
}

TEST_P(ParallelGenerateModelTest, DeterministicForFixedSeedAndThreads) {
  Graph g = GenerateBarabasiAlbert(200, 4);
  RRCollection a(g.num_nodes()), b(g.num_nodes());
  ParallelGenerate(g, GetParam(), &a, 500, 7, 3);
  ParallelGenerate(g, GetParam(), &b, 500, 7, 3);
  ASSERT_EQ(a.num_sets(), b.num_sets());
  ASSERT_EQ(a.total_size(), b.total_size());
  for (RRId id = 0; id < a.num_sets(); ++id) {
    EXPECT_EQ(a.DecodeSet(id), b.DecodeSet(id)) << "set " << id;
    EXPECT_EQ(a.SetCost(id), b.SetCost(id));
  }
}

TEST_P(ParallelGenerateModelTest, StatisticallyEquivalentAcrossThreads) {
  // Different thread counts give different streams but the same
  // distribution: spread estimates of a fixed seed set must agree.
  Graph g = GenerateErdosRenyi(150, 900);
  RRCollection serial(g.num_nodes()), parallel4(g.num_nodes());
  ParallelGenerate(g, GetParam(), &serial, 40000, 11, 1);
  ParallelGenerate(g, GetParam(), &parallel4, 40000, 11, 4);
  std::vector<NodeId> seeds = {0, 10, 20};
  double a = serial.EstimateSpread(seeds);
  double b = parallel4.EstimateSpread(seeds);
  EXPECT_NEAR(a, b, 0.15 * std::max(a, 1.0));
}

TEST_P(ParallelGenerateModelTest, ZeroCountIsNoop) {
  Graph g = GenerateBarabasiAlbert(50, 3);
  RRCollection rr(g.num_nodes());
  ParallelGenerate(g, GetParam(), &rr, 0, 1, 4);
  EXPECT_EQ(rr.num_sets(), 0u);
}

TEST_P(ParallelGenerateModelTest, MoreThreadsThanSamples) {
  Graph g = GenerateBarabasiAlbert(50, 3);
  RRCollection rr(g.num_nodes());
  ParallelGenerate(g, GetParam(), &rr, 3, 1, 16);
  EXPECT_EQ(rr.num_sets(), 3u);
}

TEST_P(ParallelGenerateModelTest, CallerOwnedPoolMatchesLocalPool) {
  // A caller-supplied pool must produce the exact stream the same thread
  // count produces with a per-call pool: the RR stream is a function of
  // (seed, num_threads) only, and the pool overrides num_threads.
  Graph g = GenerateBarabasiAlbert(200, 4);
  RRCollection local(g.num_nodes()), owned(g.num_nodes());
  ParallelGenerate(g, GetParam(), &local, 500, 7, 3);
  ThreadPool pool(3);
  ParallelGenerate(g, GetParam(), &owned, 500, 7,
                   /*num_threads=*/1,  // ignored: the pool wins
                   {}, &pool);
  ExpectSameCollections(local, owned);
}

TEST_P(ParallelGenerateModelTest, CallerOwnedPoolIsReusedAcrossCalls) {
  Graph g = GenerateBarabasiAlbert(100, 3);
  ThreadPool pool(4);
  const uint64_t tasks_before = pool.Stats().tasks_run;
  RRCollection rr(g.num_nodes());
  ParallelGenerate(g, GetParam(), &rr, 200, 1, 1, {}, &pool);
  ParallelGenerate(g, GetParam(), &rr, 200, 2, 1, {}, &pool);
  ParallelGenerate(g, GetParam(), &rr, 200, 3, 1, {}, &pool);
  EXPECT_EQ(rr.num_sets(), 600u);
  // Every call ran its shards on the shared pool (4 sampling tasks per
  // call, plus any parallel index-rebuild tasks) — lifetime stats grow
  // monotonically instead of dying with a per-call pool.
  EXPECT_GE(pool.Stats().tasks_run, tasks_before + 12);
}

TEST_P(ParallelGenerateModelTest, IncrementalBatchesMatchOneShot) {
  // Growing a collection across several generate calls (the doubling
  // pattern RunOpimC uses) yields the same sets as issuing the calls
  // against a fresh collection — batches append, never reorder.
  Graph g = GenerateBarabasiAlbert(150, 4);
  RRCollection grown(g.num_nodes()), fresh(g.num_nodes());
  ThreadPool pool(2);
  ParallelGenerate(g, GetParam(), &grown, 300, 5, 1, {}, &pool);
  ParallelGenerate(g, GetParam(), &grown, 300, 6, 1, {}, &pool);
  ParallelGenerate(g, GetParam(), &fresh, 300, 5, 2);
  ParallelGenerate(g, GetParam(), &fresh, 300, 6, 2);
  ExpectSameCollections(grown, fresh);
}

INSTANTIATE_TEST_SUITE_P(BothModels, ParallelGenerateModelTest,
                         ::testing::Values(
                             DiffusionModel::kIndependentCascade,
                             DiffusionModel::kLinearThreshold),
                         [](const auto& info) {
                           return DiffusionModelName(info.param);
                         });

}  // namespace
}  // namespace opim
