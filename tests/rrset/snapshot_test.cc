// .opimss snapshot container (rrset/snapshot.h): round-trip bit
// identity, the strict-loader corruption taxonomy (every defect class a
// distinct clean Status, never UB — the fuzz case runs meaningfully
// under the ASan config), and the atomic-publish failure contract via
// the snapshot.* fault-injection sites (real only in
// OPIM_FAULT_INJECT=ON builds).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "graph/graph_mmap.h"
#include "rrset/rr_collection.h"
#include "rrset/snapshot.h"
#include "support/fault_inject.h"
#include "support/random.h"

namespace opim {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<uint8_t> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// Recomputes the payload checksum after a deliberate payload patch, so
/// the test reaches the structural validation behind the checksum.
void FixChecksum(std::vector<uint8_t>* bytes) {
  ASSERT_GE(bytes->size(), kOpimssHeaderBytes);
  const uint64_t sum = OpimgChecksum(bytes->data() + kOpimssHeaderBytes,
                                     bytes->size() - kOpimssHeaderBytes);
  std::memcpy(bytes->data() + kOpimssChecksumOffset, &sum, sizeof(sum));
}

constexpr uint32_t kNodes = 20000;

/// A pool exercising every slot encoding: empty sets, inline singletons,
/// and multi-member sets spanning several 4096-set chunks.
RRCollection MixedCollection(uint32_t num_sets, uint64_t seed,
                             bool retain_costs) {
  RRCollection rr(kNodes, RRStoreOptions{.retain_set_costs = retain_costs});
  Rng rng(seed);
  std::vector<NodeId> members;
  for (uint32_t i = 0; i < num_sets; ++i) {
    members.clear();
    const uint32_t shape = rng.NextU32() % 10;
    uint32_t size = 0;
    if (shape == 0) {
      size = 0;  // empty set (kEmpty slot)
    } else if (shape <= 4) {
      size = 1;  // inline singleton
    } else {
      size = 2 + rng.NextU32() % 20;
    }
    for (uint32_t j = 0; j < size; ++j) {
      members.push_back(rng.NextU32() % kNodes);
    }
    rr.AddSet(members, size + rng.NextU32() % 7);
  }
  return rr;
}

SnapshotRunState TestRunState() {
  SnapshotRunState run;
  run.run_seed = 42;
  run.batch_counter = 7;
  run.peak_rr_bytes = 123456;
  run.graph_nodes = kNodes;
  run.graph_edges = 987654;
  run.eps = 0.1;
  run.delta = 1e-3;
  run.next_iteration = 5;
  run.num_threads = 4;
  run.k = 25;
  run.bound = 1;
  run.model = 0;
  run.clean_boundary = 1;
  return run;
}

void ExpectPoolsEqual(const RRCollection& a, const RRCollection& b) {
  ASSERT_EQ(a.num_sets(), b.num_sets());
  EXPECT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_EQ(a.total_size(), b.total_size());
  EXPECT_EQ(a.total_edges_examined(), b.total_edges_examined());
  EXPECT_EQ(a.CompressedMemberBytes(), b.CompressedMemberBytes());
  EXPECT_EQ(a.retains_set_costs(), b.retains_set_costs());
  for (RRId id = 0; id < a.num_sets(); ++id) {
    ASSERT_EQ(a.DecodeSet(id), b.DecodeSet(id)) << "set " << id;
  }
  // The index is rebuilt, not serialized; it must still agree.
  for (NodeId v : {NodeId{0}, NodeId{17}, NodeId{4242}, NodeId{kNodes - 1}}) {
    EXPECT_EQ(a.CoveringCount(v), b.CoveringCount(v)) << "node " << v;
  }
}

TEST(SnapshotTest, RoundTripBitIdentity) {
  const std::string path = TempPath("roundtrip.opimss");
  RRCollection r1 = MixedCollection(2 * 4096 + 333, /*seed=*/3, false);
  RRCollection r2 = MixedCollection(4096 + 17, /*seed=*/5, false);
  const SnapshotRunState run = TestRunState();

  auto saved = SaveSnapshot(run, r1, r2, path);
  ASSERT_TRUE(saved.ok()) << saved.status().ToString();
  EXPECT_EQ(saved.ValueOrDie(), ReadAll(path).size());

  auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const RRPoolSnapshot& snap = loaded.ValueOrDie();
  EXPECT_EQ(0, std::memcmp(&snap.run, &run, sizeof(run)));
  ExpectPoolsEqual(r1, snap.r1);
  ExpectPoolsEqual(r2, snap.r2);

  // Re-serializing the restored state reproduces the container
  // byte-for-byte: the wire format is canonical.
  const std::string path2 = TempPath("roundtrip2.opimss");
  auto saved2 = SaveSnapshot(snap.run, snap.r1, snap.r2, path2);
  ASSERT_TRUE(saved2.ok()) << saved2.status().ToString();
  EXPECT_EQ(ReadAll(path), ReadAll(path2));
}

TEST(SnapshotTest, RoundTripWithCostColumn) {
  const std::string path = TempPath("costs.opimss");
  RRCollection r1 = MixedCollection(900, /*seed=*/11, true);
  RRCollection r2 = MixedCollection(900, /*seed=*/13, true);
  ASSERT_TRUE(SaveSnapshot(TestRunState(), r1, r2, path).ok());
  auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectPoolsEqual(r1, loaded.ValueOrDie().r1);
  ASSERT_TRUE(loaded.ValueOrDie().r1.retains_set_costs());
  for (RRId id = 0; id < r1.num_sets(); ++id) {
    EXPECT_EQ(r1.SetCost(id), loaded.ValueOrDie().r1.SetCost(id));
  }
}

TEST(SnapshotTest, EmptyPoolsRoundTrip) {
  const std::string path = TempPath("empty.opimss");
  RRCollection r1(kNodes), r2(kNodes);
  ASSERT_TRUE(SaveSnapshot(TestRunState(), r1, r2, path).ok());
  auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.ValueOrDie().r1.num_sets(), 0u);
  EXPECT_EQ(loaded.ValueOrDie().r2.num_sets(), 0u);
}

TEST(SnapshotTest, SpilledPoolSerializesIdentically) {
  // A pool with chunks evicted to the spill tier must produce the same
  // container as its fully-resident twin (ChunkRun faults them in).
  const std::string resident_path = TempPath("resident.opimss");
  const std::string spilled_path = TempPath("spilled.opimss");
  RRCollection resident = MixedCollection(3 * 4096 + 50, /*seed=*/29, false);
  RRCollection spilled = MixedCollection(3 * 4096 + 50, /*seed=*/29, false);
  ASSERT_TRUE(spilled.EnableSpill({.dir = ::testing::TempDir()}).ok());
  auto evicted = spilled.SpillColdChunks(/*target_resident_bytes=*/0);
  ASSERT_TRUE(evicted.ok()) << evicted.status().ToString();
  ASSERT_GT(evicted.ValueOrDie(), 0u);

  const SnapshotRunState run = TestRunState();
  ASSERT_TRUE(SaveSnapshot(run, resident, resident, resident_path).ok());
  ASSERT_TRUE(SaveSnapshot(run, spilled, spilled, spilled_path).ok());
  EXPECT_EQ(ReadAll(resident_path), ReadAll(spilled_path));
}

// ---------------------------------------------------------------------
// Corruption taxonomy: each defect class fails with its distinct
// message, and none of them crash.

class SnapshotCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("corrupt.opimss");
    RRCollection r1 = MixedCollection(700, /*seed=*/7, false);
    RRCollection r2 = MixedCollection(300, /*seed=*/9, false);
    ASSERT_TRUE(SaveSnapshot(TestRunState(), r1, r2, path_).ok());
    bytes_ = ReadAll(path_);
    ASSERT_GT(bytes_.size(), kOpimssHeaderBytes + sizeof(SnapshotRunState));
  }

  /// Writes the (mutated) bytes back and expects a clean rejection
  /// whose message contains `needle`.
  void ExpectRejected(const std::string& needle) {
    WriteAll(path_, bytes_);
    auto loaded = LoadSnapshot(path_);
    ASSERT_FALSE(loaded.ok()) << "accepted a corrupt snapshot";
    EXPECT_NE(loaded.status().message().find(needle), std::string::npos)
        << "got: " << loaded.status().ToString();
  }

  std::string path_;
  std::vector<uint8_t> bytes_;
};

TEST_F(SnapshotCorruptionTest, TruncatedHeader) {
  bytes_.resize(kOpimssHeaderBytes / 2);
  ExpectRejected("truncated snapshot header");
}

TEST_F(SnapshotCorruptionTest, TruncatedPayload) {
  bytes_.resize(bytes_.size() - 10);
  ExpectRejected("truncated snapshot payload");
}

TEST_F(SnapshotCorruptionTest, TrailingBytes) {
  bytes_.push_back(0);
  ExpectRejected("trailing bytes");
}

TEST_F(SnapshotCorruptionTest, BadMagic) {
  bytes_[0] ^= 0xFF;
  ExpectRejected("bad snapshot magic");
}

TEST_F(SnapshotCorruptionTest, FutureVersion) {
  const uint32_t v = 99;
  std::memcpy(bytes_.data() + kOpimssVersionOffset, &v, sizeof(v));
  ExpectRejected("unsupported snapshot version 99");
}

TEST_F(SnapshotCorruptionTest, FlippedPayloadByte) {
  bytes_[bytes_.size() - 3] ^= 0x40;
  ExpectRejected("payload checksum mismatch");
}

TEST_F(SnapshotCorruptionTest, DeclaredLengthOverflow) {
  // Inflate R1's num_sets/num_chunks consistently and re-checksum, so
  // the slot-array read (1 GiB declared) is what must fail — behind the
  // checksum, only the cursor's bounds check stands between this file
  // and a wild read.
  const size_t pool_hdr = kOpimssHeaderBytes + sizeof(SnapshotRunState);
  const uint32_t huge_sets = 0x10000000;            // 268M sets
  const uint32_t huge_chunks = huge_sets / 4096;    // consistent chunk count
  std::memcpy(bytes_.data() + pool_hdr + 4, &huge_sets, sizeof(huge_sets));
  std::memcpy(bytes_.data() + pool_hdr + 8, &huge_chunks, sizeof(huge_chunks));
  FixChecksum(&bytes_);
  ExpectRejected("declares oversized pool slot array");
}

TEST_F(SnapshotCorruptionTest, OversizedChunkRunLength) {
  // Find R1's first chunk-run length word and blow it past the 31-bit
  // slot-offset ceiling; with a fixed checksum the structural check must
  // still reject it.
  const size_t pool_hdr = kOpimssHeaderBytes + sizeof(SnapshotRunState);
  uint32_t num_sets = 0;
  std::memcpy(&num_sets, bytes_.data() + pool_hdr + 4, sizeof(num_sets));
  const size_t run_len_at = pool_hdr + 40 + size_t{num_sets} * 4;
  const uint64_t huge = uint64_t{1} << 33;
  std::memcpy(bytes_.data() + run_len_at, &huge, sizeof(huge));
  FixChecksum(&bytes_);
  ExpectRejected("declares oversized chunk run");
}

TEST_F(SnapshotCorruptionTest, PoolNodeCountMismatch) {
  // R1's node count disagreeing with the run state must be caught even
  // when the pool itself is self-consistent.
  const size_t pool_hdr = kOpimssHeaderBytes + sizeof(SnapshotRunState);
  const uint32_t other_nodes = kNodes + 1;
  std::memcpy(bytes_.data() + pool_hdr, &other_nodes, sizeof(other_nodes));
  FixChecksum(&bytes_);
  // Either an inline member is now out of range for the shrunken space
  // (not here — we grew it) or the final cross-check fires.
  ExpectRejected("pool node count disagrees with run state");
}

TEST_F(SnapshotCorruptionTest, RandomMutationFuzzNeverCrashes) {
  // 300 deterministic random mutations (bit flips, truncations, length
  // patches with fixed checksums). The loader may accept or reject each;
  // it must never crash, leak, or read out of bounds (the ASan config in
  // run_all.sh runs this suite).
  Rng rng(0xF00D);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<uint8_t> mutated = bytes_;
    const uint32_t kind = rng.NextU32() % 4;
    if (kind == 0) {
      mutated.resize(rng.NextU32() % (mutated.size() + 1));
    } else if (kind == 1) {
      const int flips = 1 + static_cast<int>(rng.NextU32() % 8);
      for (int i = 0; i < flips; ++i) {
        mutated[rng.NextU32() % mutated.size()] ^=
            static_cast<uint8_t>(1u << (rng.NextU32() % 8));
      }
    } else {
      // Patch a random word inside the payload, then fix the checksum so
      // the structural validators (not the checksum) do the rejecting.
      if (mutated.size() > kOpimssHeaderBytes + 8) {
        const size_t at = kOpimssHeaderBytes +
                          rng.NextU32() % (mutated.size() -
                                           kOpimssHeaderBytes - 8);
        uint64_t word = rng.NextU64();
        std::memcpy(mutated.data() + at, &word, kind == 2 ? 4 : 8);
        if (mutated.size() >= kOpimssHeaderBytes) {
          const uint64_t sum =
              OpimgChecksum(mutated.data() + kOpimssHeaderBytes,
                            mutated.size() - kOpimssHeaderBytes);
          std::memcpy(mutated.data() + kOpimssChecksumOffset, &sum,
                      sizeof(sum));
        }
      }
    }
    WriteAll(path_, mutated);
    auto loaded = LoadSnapshot(path_);  // must return, never crash
    (void)loaded;
  }
}

TEST(SnapshotTest, MissingFileIsIOError) {
  auto loaded = LoadSnapshot(TempPath("does_not_exist.opimss"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

// ---------------------------------------------------------------------
// Atomic-publish failure contract, via the snapshot.* fault sites.
// Real assertions only in OPIM_FAULT_INJECT=ON builds (build-fi).

#if OPIM_FAULT_INJECT_ENABLED

class SnapshotFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::Reset(); }
  void TearDown() override { fault::Reset(); }
};

TEST_F(SnapshotFaultTest, ShortWriteLeavesPreviousSnapshotIntact) {
  const std::string path = TempPath("atomic_short.opimss");
  RRCollection a = MixedCollection(200, /*seed=*/1, false);
  RRCollection b = MixedCollection(400, /*seed=*/2, false);
  ASSERT_TRUE(SaveSnapshot(TestRunState(), a, a, path).ok());
  const std::vector<uint8_t> before = ReadAll(path);

  fault::Arm("snapshot.short_write", 1);
  auto saved = SaveSnapshot(TestRunState(), b, b, path);
  ASSERT_FALSE(saved.ok());
  EXPECT_EQ(saved.status().code(), StatusCode::kIOError);
  // The failed publish must not have touched the durable file, and the
  // temp file must not linger.
  EXPECT_EQ(ReadAll(path), before);
  auto reloaded = LoadSnapshot(path);
  EXPECT_TRUE(reloaded.ok()) << reloaded.status().ToString();
}

TEST_F(SnapshotFaultTest, RenameFailLeavesPreviousSnapshotIntact) {
  const std::string path = TempPath("atomic_rename.opimss");
  RRCollection a = MixedCollection(200, /*seed=*/3, false);
  RRCollection b = MixedCollection(400, /*seed=*/4, false);
  ASSERT_TRUE(SaveSnapshot(TestRunState(), a, a, path).ok());
  const std::vector<uint8_t> before = ReadAll(path);

  fault::Arm("snapshot.rename_fail", 1);
  auto saved = SaveSnapshot(TestRunState(), b, b, path);
  ASSERT_FALSE(saved.ok());
  EXPECT_EQ(ReadAll(path), before);
}

TEST_F(SnapshotFaultTest, CorruptHeaderIsRejectedOnLoad) {
  const std::string path = TempPath("atomic_corrupt.opimss");
  RRCollection a = MixedCollection(200, /*seed=*/5, false);
  fault::Arm("snapshot.corrupt_header", 1);
  // The torn write itself "succeeds" — the corruption is only visible
  // to the reader, which must reject it cleanly.
  ASSERT_TRUE(SaveSnapshot(TestRunState(), a, a, path).ok());
  auto loaded = LoadSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("bad snapshot magic"),
            std::string::npos)
      << loaded.status().ToString();
}

#endif  // OPIM_FAULT_INJECT_ENABLED

}  // namespace
}  // namespace opim
