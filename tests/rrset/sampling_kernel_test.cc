// Differential and statistical tests for the fast sampling kernel
// (graph/sampling_view.h + the SamplingView-based RR samplers).
//
// The kernel replaces double-precision Bernoulli draws with quantized
// 32-bit reject thresholds, adds geometric skipping over high-degree
// uniform-probability nodes, and flattens the LT alias tables into one
// arena. None of that may change the *distribution* being sampled beyond
// the documented 2^-32 per-trial quantization error, so these tests
// compare the production kernels against straightforward double-precision
// reference implementations (the pre-view algorithms, kept verbatim here):
// mean RR-set size and per-node coverage frequencies via a two-sample
// chi-square statistic, plus exactness at the p = 0 / p = 1 boundaries
// where quantization is required to be lossless.

#include "graph/sampling_view.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gen/generators.h"
#include "graph/graph.h"
#include "rrset/rr_sampler.h"
#include "support/alias_sampler.h"
#include "support/random.h"
#include "support/thread_pool.h"

namespace opim {
namespace {

// ---------------------------------------------------------------------------
// Double-precision reference kernels (the pre-SamplingView algorithms).
// ---------------------------------------------------------------------------

/// Reference IC RR sample: uniform root, one Bernoulli(p) double draw per
/// in-edge of every traversed node.
void ReferenceIcSample(const Graph& g, Rng& rng, std::vector<NodeId>* out) {
  out->clear();
  std::vector<char> visited(g.num_nodes(), 0);
  const NodeId root = rng.UniformBelow(g.num_nodes());
  visited[root] = 1;
  out->push_back(root);
  for (size_t head = 0; head < out->size(); ++head) {
    const NodeId u = (*out)[head];
    const auto nbrs = g.InNeighbors(u);
    const auto probs = g.InProbs(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      const NodeId w = nbrs[i];
      if (visited[w]) continue;
      if (!rng.Bernoulli(probs[i])) continue;
      visited[w] = 1;
      out->push_back(w);
    }
  }
}

/// Reference LT RR sample: uniform root, double stop draw + per-node alias
/// table per walk step.
void ReferenceLtSample(const Graph& g,
                       const std::vector<AliasSampler>& in_alias, Rng& rng,
                       std::vector<NodeId>* out) {
  out->clear();
  std::vector<char> visited(g.num_nodes(), 0);
  NodeId u = rng.UniformBelow(g.num_nodes());
  for (;;) {
    if (visited[u]) break;
    visited[u] = 1;
    out->push_back(u);
    const double stay = g.InWeightSum(u);
    if (stay <= 0.0 || in_alias[u].empty()) break;
    if (rng.UniformDouble() >= stay) break;
    u = g.InNeighbors(u)[in_alias[u].Sample(rng)];
  }
}

std::vector<AliasSampler> BuildReferenceAlias(const Graph& g) {
  std::vector<AliasSampler> in_alias(g.num_nodes());
  std::vector<double> weights;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto probs = g.InProbs(v);
    weights.assign(probs.begin(), probs.end());
    in_alias[v].Build(weights);
  }
  return in_alias;
}

// ---------------------------------------------------------------------------
// Statistical helpers.
// ---------------------------------------------------------------------------

/// Two-sample chi-square statistic Σ (a_i - b_i)² / (a_i + b_i) over the
/// categories with enough mass, for equal sample counts. Returns the
/// statistic and (via out-param) the degrees of freedom actually used.
double TwoSampleChiSquare(const std::vector<uint64_t>& a,
                          const std::vector<uint64_t>& b, size_t* df) {
  double stat = 0.0;
  *df = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double ai = static_cast<double>(a[i]);
    const double bi = static_cast<double>(b[i]);
    if (ai + bi < 20.0) continue;  // skip sparse categories
    const double d = ai - bi;
    stat += d * d / (ai + bi);
    ++(*df);
  }
  return stat;
}

/// Loose upper acceptance bound for a chi-square statistic with `df`
/// degrees of freedom: mean df, variance 2·df, so df + 6·sqrt(2·df) is far
/// out in the tail (one-sided p well below 1e-6 for the df used here).
double ChiSquareBound(size_t df) {
  return static_cast<double>(df) +
         6.0 * std::sqrt(2.0 * static_cast<double>(df));
}

struct CoverageStats {
  std::vector<uint64_t> node_hits;  // per-node coverage count
  double mean_size = 0.0;
};

template <typename SampleFn>
CoverageStats Collect(uint32_t n, int samples, SampleFn&& sample) {
  CoverageStats s;
  s.node_hits.assign(n, 0);
  std::vector<NodeId> out;
  uint64_t total = 0;
  for (int i = 0; i < samples; ++i) {
    sample(&out);
    total += out.size();
    for (const NodeId v : out) ++s.node_hits[v];
  }
  s.mean_size = static_cast<double>(total) / samples;
  return s;
}

// ---------------------------------------------------------------------------
// Quantization unit tests.
// ---------------------------------------------------------------------------

TEST(QuantizeRejectThresholdTest, BoundariesAreExact) {
  EXPECT_EQ(QuantizeRejectThreshold(1.0), 0u);
  EXPECT_EQ(QuantizeRejectThreshold(1.5), 0u);
  EXPECT_EQ(QuantizeRejectThreshold(0.0), SamplingView::kAlwaysReject);
  EXPECT_EQ(QuantizeRejectThreshold(-0.5), SamplingView::kAlwaysReject);
}

TEST(QuantizeRejectThresholdTest, InteriorErrorWithinOneUlp32) {
  Rng rng(404);
  for (int i = 0; i < 10000; ++i) {
    const double p = rng.UniformDouble();
    if (p <= 0.0 || p >= 1.0) continue;
    const uint32_t rej = QuantizeRejectThreshold(p);
    // Keep probability implied by the threshold: (2^32 - rej) / 2^32.
    const double implied =
        (0x1.0p32 - static_cast<double>(rej)) * 0x1.0p-32;
    EXPECT_NEAR(implied, p, 0x1.0p-32) << "p=" << p;
  }
}

TEST(QuantizeRejectThresholdTest, HalfIsTwoToThirtyOne) {
  EXPECT_EQ(QuantizeRejectThreshold(0.5), 0x80000000u);
}

// ---------------------------------------------------------------------------
// View construction tests.
// ---------------------------------------------------------------------------

TEST(SamplingViewTest, ClassifiesNodesAndDropsDeadEdges) {
  GraphBuilder b(40);
  // Node 0: 20 uniform low-probability in-edges -> kSkip.
  for (NodeId u = 1; u <= 20; ++u) b.AddEdge(u, 0, 0.05);
  // Node 1: uniform but p too large for skipping -> kPerEdge.
  for (NodeId u = 2; u <= 21; ++u) b.AddEdge(u, 1, 0.5);
  // Node 2: certain edges -> kKeepAll.
  b.AddEdge(3, 2, 1.0);
  b.AddEdge(4, 2, 1.0);
  // Node 3: mixed probabilities -> kPerEdge.
  b.AddEdge(5, 3, 0.2);
  b.AddEdge(6, 3, 0.7);
  // Node 4: only a dead edge -> compacted away, kEmpty.
  b.AddEdge(5, 4, 0.0);
  // Node 5: no in-edges at all -> kEmpty.
  Graph g = b.Build();
  SamplingView view(g, SamplingView::Parts::kIc);

  EXPECT_TRUE(view.has_ic());
  EXPECT_FALSE(view.has_lt());
  EXPECT_EQ(view.ic_kind(0), SamplingView::IcNodeKind::kSkip);
  EXPECT_LT(view.IcSkipInvLog(0), 0.0);  // 1/log1p(-p) < 0 for p in (0,1)
  EXPECT_EQ(view.ic_kind(1), SamplingView::IcNodeKind::kPerEdge);
  EXPECT_EQ(view.ic_kind(2), SamplingView::IcNodeKind::kKeepAll);
  EXPECT_EQ(view.ic_kind(3), SamplingView::IcNodeKind::kPerEdge);
  EXPECT_EQ(view.ic_kind(4), SamplingView::IcNodeKind::kEmpty);
  EXPECT_EQ(view.ic_kind(5), SamplingView::IcNodeKind::kEmpty);

  EXPECT_EQ(view.IcEdges(0).size(), 20u);
  EXPECT_EQ(view.IcEdges(4).size(), 0u);  // p = 0 edge dropped
  EXPECT_EQ(view.IcFullInDegree(4), 1u);  // cost contract still charges it
  for (const auto& e : view.IcEdges(2)) EXPECT_EQ(e.rej, 0u);
}

TEST(SamplingViewTest, SkipThresholdRespectsDegreeAndProbability) {
  GraphBuilder b(40);
  // Degree below kSkipMinDegree stays per-edge even at small p.
  for (NodeId u = 1; u <= SamplingView::kSkipMinDegree - 1; ++u) {
    b.AddEdge(u, 0, 0.05);
  }
  Graph g = b.Build();
  SamplingView view(g, SamplingView::Parts::kIc);
  EXPECT_EQ(view.ic_kind(0), SamplingView::IcNodeKind::kPerEdge);
}

TEST(SamplingViewTest, LtArenaMatchesReferenceStopProbabilities) {
  Graph g = GenerateBarabasiAlbert(200, 3);  // weighted cascade
  SamplingView view(g, SamplingView::Parts::kLt);
  EXPECT_TRUE(view.has_lt());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const double stay = g.InWeightSum(v);
    if (g.InDegree(v) == 0 || stay <= 0.0) {
      EXPECT_EQ(view.LtStopReject(v), SamplingView::kAlwaysReject);
    } else if (stay >= 1.0) {
      // Weighted cascade saturates Σ p = 1: the stop draw must be elided
      // exactly, not approximately.
      EXPECT_EQ(view.LtStopReject(v), 0u);
    } else {
      const double implied_stop =
          static_cast<double>(view.LtStopReject(v)) * 0x1.0p-32;
      EXPECT_NEAR(implied_stop, 1.0 - stay, 0x1.0p-32);
    }
  }
}

TEST(SamplingViewTest, ParallelBuildMatchesSerialBuild) {
  Graph g = GenerateBarabasiAlbert(30000, 5);
  ThreadPool pool(4);
  SamplingView serial(g, SamplingView::Parts::kBoth);
  SamplingView parallel(g, SamplingView::Parts::kBoth, &pool);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_EQ(serial.ic_kind(v), parallel.ic_kind(v)) << "node " << v;
    ASSERT_EQ(serial.IcFullInDegree(v), parallel.IcFullInDegree(v));
    const auto se = serial.IcEdges(v);
    const auto pe = parallel.IcEdges(v);
    ASSERT_EQ(se.size(), pe.size()) << "node " << v;
    for (size_t i = 0; i < se.size(); ++i) {
      ASSERT_EQ(se[i].nbr, pe[i].nbr);
      ASSERT_EQ(se[i].rej, pe[i].rej);
    }
    ASSERT_EQ(serial.LtStopReject(v), parallel.LtStopReject(v));
    ASSERT_EQ(serial.LtOffset(v), parallel.LtOffset(v));
    for (uint64_t bkt = serial.LtOffset(v); bkt < serial.LtOffset(v + 1);
         ++bkt) {
      const auto& sb = serial.LtBucketAt(bkt);
      const auto& pb = parallel.LtBucketAt(bkt);
      ASSERT_EQ(sb.rej, pb.rej);
      ASSERT_EQ(sb.keep, pb.keep);
      ASSERT_EQ(sb.alias, pb.alias);
    }
  }
}

// ---------------------------------------------------------------------------
// Shared-view samplers must reproduce the owning samplers exactly.
// ---------------------------------------------------------------------------

TEST(SharedViewTest, BorrowedViewMatchesOwnedSamplerBitExactly) {
  Graph g = GenerateBarabasiAlbert(500, 4);
  SamplingView view(g);
  for (DiffusionModel model : {DiffusionModel::kIndependentCascade,
                               DiffusionModel::kLinearThreshold}) {
    auto owned = MakeRRSampler(g, model);
    auto borrowed = MakeRRSampler(view, model);
    Rng rng_a(77), rng_b(77);
    std::vector<NodeId> a, b;
    for (int i = 0; i < 500; ++i) {
      const uint64_t ca = owned->SampleInto(rng_a, &a);
      const uint64_t cb = borrowed->SampleInto(rng_b, &b);
      ASSERT_EQ(a, b);
      ASSERT_EQ(ca, cb);
    }
  }
}

TEST(SharedViewTest, SharedRootTableMatchesOwnedWeights) {
  Graph g = GenerateBarabasiAlbert(300, 3);
  std::vector<double> weights(g.num_nodes());
  Rng wrng(5);
  for (double& w : weights) w = wrng.UniformDouble();
  SamplingView view(g);
  AliasSampler root_table(weights);
  auto owned = MakeRRSampler(g, DiffusionModel::kIndependentCascade, weights);
  auto shared =
      MakeRRSampler(view, DiffusionModel::kIndependentCascade, &root_table);
  Rng rng_a(13), rng_b(13);
  std::vector<NodeId> a, b;
  for (int i = 0; i < 500; ++i) {
    const uint64_t ca = owned->SampleInto(rng_a, &a);
    const uint64_t cb = shared->SampleInto(rng_b, &b);
    ASSERT_EQ(a, b);
    ASSERT_EQ(ca, cb);
  }
}

// ---------------------------------------------------------------------------
// Differential distribution tests vs the double-precision reference.
// ---------------------------------------------------------------------------

constexpr int kDiffSamples = 60000;

TEST(KernelDifferentialTest, IcMatchesDoublePrecisionReference) {
  // Weighted-cascade BA graph: mixed node kinds (hubs classify as kSkip,
  // low-degree nodes as kPerEdge), the paper's experimental weighting.
  Graph g = GenerateBarabasiAlbert(400, 4);
  IcRRSampler sampler(g);
  Rng rng_new(2024);
  const CoverageStats fast =
      Collect(g.num_nodes(), kDiffSamples,
              [&](std::vector<NodeId>* out) { sampler.SampleInto(rng_new, out); });
  Rng rng_ref(4048);
  const CoverageStats ref =
      Collect(g.num_nodes(), kDiffSamples,
              [&](std::vector<NodeId>* out) { ReferenceIcSample(g, rng_ref, out); });

  EXPECT_NEAR(fast.mean_size, ref.mean_size, 0.05 * ref.mean_size);
  size_t df = 0;
  const double stat = TwoSampleChiSquare(fast.node_hits, ref.node_hits, &df);
  ASSERT_GT(df, 100u);  // the test must actually cover most nodes
  EXPECT_LT(stat, ChiSquareBound(df)) << "df=" << df;
}

TEST(KernelDifferentialTest, LtMatchesDoublePrecisionReference) {
  Graph g = GenerateBarabasiAlbert(400, 4);
  const std::vector<AliasSampler> ref_alias = BuildReferenceAlias(g);
  LtRRSampler sampler(g);
  Rng rng_new(9090);
  const CoverageStats fast =
      Collect(g.num_nodes(), kDiffSamples,
              [&](std::vector<NodeId>* out) { sampler.SampleInto(rng_new, out); });
  Rng rng_ref(1818);
  const CoverageStats ref = Collect(
      g.num_nodes(), kDiffSamples, [&](std::vector<NodeId>* out) {
        ReferenceLtSample(g, ref_alias, rng_ref, out);
      });

  EXPECT_NEAR(fast.mean_size, ref.mean_size, 0.05 * ref.mean_size);
  size_t df = 0;
  const double stat = TwoSampleChiSquare(fast.node_hits, ref.node_hits, &df);
  ASSERT_GT(df, 100u);
  EXPECT_LT(stat, ChiSquareBound(df)) << "df=" << df;
}

TEST(KernelDifferentialTest, GeometricSkipMatchesNaiveScanPerPosition) {
  // A single high-degree uniform-p node: the view must classify it kSkip,
  // and the skipping kernel's per-position edge inclusion frequencies must
  // match a naive Bernoulli scan (the positions are iid, so any positional
  // bias in the skip arithmetic shows up here).
  constexpr uint32_t kDeg = 64;
  constexpr double kP = 0.05;
  GraphBuilder b(kDeg + 1);
  for (NodeId u = 1; u <= kDeg; ++u) b.AddEdge(u, 0, kP);
  Graph g = b.Build();
  SamplingView view(g, SamplingView::Parts::kIc);
  ASSERT_EQ(view.ic_kind(0), SamplingView::IcNodeKind::kSkip);

  constexpr int kTrials = 120000;
  IcRRSampler sampler(view);
  Rng rng(31337);
  std::vector<uint64_t> skip_hits(g.num_nodes(), 0);
  std::vector<NodeId> out;
  int rooted_at_hub = 0;
  for (int i = 0; i < kTrials; ++i) {
    sampler.SampleInto(rng, &out);
    if (out[0] != 0) continue;  // only RR sets rooted at the hub traverse
    ++rooted_at_hub;
    for (const NodeId v : out) {
      if (v != 0) ++skip_hits[v];
    }
  }
  ASSERT_GT(rooted_at_hub, 1000);

  Rng ref_rng(73313);
  std::vector<uint64_t> ref_hits(g.num_nodes(), 0);
  for (int i = 0; i < rooted_at_hub; ++i) {
    for (NodeId u = 1; u <= kDeg; ++u) {
      if (ref_rng.Bernoulli(kP)) ++ref_hits[u];
    }
  }

  size_t df = 0;
  const double stat = TwoSampleChiSquare(skip_hits, ref_hits, &df);
  ASSERT_EQ(df, kDeg);
  EXPECT_LT(stat, ChiSquareBound(df)) << "df=" << df;

  // Aggregate inclusion frequency must match p closely too.
  uint64_t total = 0;
  for (const uint64_t h : skip_hits) total += h;
  const double freq =
      static_cast<double>(total) / (static_cast<double>(rooted_at_hub) * kDeg);
  EXPECT_NEAR(freq, kP, 0.005);
}

TEST(KernelDifferentialTest, GeometricSkipDistributionHasRightMoments) {
  // Geometric(p) on {0, 1, ...}: mean (1-p)/p and P(X = 0) = p.
  constexpr double kP = 0.05;
  const double inv = 1.0 / std::log1p(-kP);
  Rng rng(5150);
  constexpr int kTrials = 200000;
  double sum = 0.0;
  int zeros = 0;
  for (int i = 0; i < kTrials; ++i) {
    const uint64_t s = rng.GeometricSkip(inv);
    sum += static_cast<double>(s);
    zeros += s == 0;
  }
  const double mean = sum / kTrials;
  EXPECT_NEAR(mean, (1.0 - kP) / kP, 0.25);
  EXPECT_NEAR(static_cast<double>(zeros) / kTrials, kP, 0.003);
}

}  // namespace
}  // namespace opim
