// Round-trip fuzz for the group-varint delta codec behind RRCollection's
// compressed member storage, plus the corrupted-input contract of the
// checked decoder: arbitrary bytes must come back as Status errors, never
// out-of-bounds reads or bogus members.

#include "rrset/varint_codec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "support/random.h"

namespace opim {
namespace {

/// Encodes, then decodes through BOTH decoders (fast path with slack
/// appended, checked path on the exact span) and expects the input back.
void ExpectRoundTrip(const std::vector<NodeId>& sorted, uint32_t max_value) {
  std::vector<uint8_t> buf;
  const size_t written = EncodeRRMembers(sorted, &buf);
  ASSERT_EQ(written, buf.size());
  EXPECT_EQ(EncodedRRMembersSize(sorted), written);
  EXPECT_EQ(DecodedRRMemberCount(buf.data()), sorted.size());

  // Fast decoder: needs kVarintDecodeSlackBytes readable past the end.
  std::vector<uint8_t> padded = buf;
  padded.insert(padded.end(), kVarintDecodeSlackBytes, 0);
  std::vector<NodeId> fast;
  const uint8_t* end = DecodeRRMembersForEach(
      padded.data(), [&](NodeId v) { fast.push_back(v); });
  EXPECT_EQ(fast, sorted);
  EXPECT_EQ(static_cast<size_t>(end - padded.data()), written)
      << "decoder must stop exactly at the end of the encoding";

  // Checked decoder: exact span, no slack.
  std::vector<NodeId> checked;
  const Status s = DecodeRRMembersChecked(buf, max_value, &checked);
  ASSERT_TRUE(s.ok()) << s.message();
  EXPECT_EQ(checked, sorted);
}

TEST(VarintCodecTest, EmptyList) { ExpectRoundTrip({}, 10); }

TEST(VarintCodecTest, Singletons) {
  ExpectRoundTrip({0}, 1);
  ExpectRoundTrip({255}, 256);
  ExpectRoundTrip({256}, 257);
  ExpectRoundTrip({0x7FFFFFFEu}, 0x7FFFFFFFu);
}

TEST(VarintCodecTest, DenseRuns) {
  // Consecutive ids are the best case: every delta encodes to one byte.
  std::vector<NodeId> dense;
  for (NodeId v = 0; v < 1000; ++v) dense.push_back(v);
  ExpectRoundTrip(dense, 1000);
  std::vector<uint8_t> buf;
  EncodeRRMembers(dense, &buf);
  // count varint (2) + 250 groups of (ctrl + 4 x 1 byte).
  EXPECT_LE(buf.size(), 2u + 250u * 5u);
}

TEST(VarintCodecTest, GroupBoundaryLengths) {
  // 1..9 members exercise full and partial trailing groups.
  for (uint32_t len = 1; len <= 9; ++len) {
    std::vector<NodeId> ids;
    for (uint32_t i = 0; i < len; ++i) ids.push_back(i * 37 + 5);
    ExpectRoundTrip(ids, 1u << 16);
  }
}

TEST(VarintCodecTest, NearMaxIds) {
  const uint32_t n = 0x7FFFFFFFu;  // RRCollection's num_nodes ceiling
  ExpectRoundTrip({n - 5, n - 3, n - 2, n - 1}, n);
  ExpectRoundTrip({0, n - 1}, n);  // 4-byte delta in one group
}

TEST(VarintCodecTest, MixedDeltaWidthsInOneGroup) {
  // Forces all four 2-bit length codes into a single control byte.
  ExpectRoundTrip({1, 3, 300, 70000, 20000000}, 1u << 25);
}

TEST(VarintCodecTest, RandomizedRoundTrips) {
  Rng rng(42, 0xc0dec);
  for (int trial = 0; trial < 300; ++trial) {
    const uint32_t n = 2 + rng.UniformBelow(trial % 3 == 0 ? 1u << 24 : 4096);
    const uint32_t len = rng.UniformBelow(200);
    std::vector<NodeId> ids;
    ids.reserve(len);
    for (uint32_t i = 0; i < len; ++i) ids.push_back(rng.UniformBelow(n));
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    ExpectRoundTrip(ids, n);
  }
}

TEST(VarintCodecTest, EncodingsConcatenateIndependently) {
  // RRCollection appends many encodings into one pool; each must decode
  // from its own offset regardless of neighbors.
  std::vector<std::vector<NodeId>> sets = {
      {0, 1, 2}, {5}, {}, {100, 200, 300, 400, 500}, {7, 9}};
  std::vector<uint8_t> pool;
  std::vector<size_t> offsets;
  for (const auto& s : sets) {
    offsets.push_back(pool.size());
    EncodeRRMembers(s, &pool);
  }
  pool.insert(pool.end(), kVarintDecodeSlackBytes, 0);
  for (size_t i = 0; i < sets.size(); ++i) {
    std::vector<NodeId> got;
    DecodeRRMembersForEach(pool.data() + offsets[i],
                           [&](NodeId v) { got.push_back(v); });
    EXPECT_EQ(got, sets[i]) << "set " << i;
  }
}

// --- Corrupted-input contract: every malformed byte string must yield a
// failed Status from the checked decoder (UB-free by construction: it
// never reads outside the span).

Status CheckedDecode(const std::vector<uint8_t>& bytes, uint32_t max_value) {
  std::vector<NodeId> out;
  return DecodeRRMembersChecked(bytes, max_value, &out);
}

TEST(VarintCodecCorruptTest, EmptyInput) {
  EXPECT_FALSE(CheckedDecode({}, 10).ok());
}

TEST(VarintCodecCorruptTest, TruncatedCountHeader) {
  // Continuation bit set with nothing after it.
  EXPECT_FALSE(CheckedDecode({0x80}, 10).ok());
  EXPECT_FALSE(CheckedDecode({0xFF, 0xFF}, 10).ok());
}

TEST(VarintCodecCorruptTest, TruncatedGroup) {
  std::vector<uint8_t> buf;
  EncodeRRMembers(std::vector<NodeId>{10, 20, 30, 40, 50}, &buf);
  for (size_t cut = 1; cut < buf.size(); ++cut) {
    std::vector<uint8_t> trunc(buf.begin(), buf.begin() + cut);
    EXPECT_FALSE(CheckedDecode(trunc, 100).ok()) << "cut at " << cut;
  }
}

TEST(VarintCodecCorruptTest, TrailingBytesRejected) {
  std::vector<uint8_t> buf;
  EncodeRRMembers(std::vector<NodeId>{1, 2, 3}, &buf);
  buf.push_back(0x00);
  EXPECT_FALSE(CheckedDecode(buf, 10).ok());
}

TEST(VarintCodecCorruptTest, CountLargerThanUniverse) {
  // Claimed count exceeds max_value: cannot hold that many distinct ids.
  std::vector<uint8_t> buf = {0x05};  // count = 5, no payload
  EXPECT_FALSE(CheckedDecode(buf, 3).ok());
}

TEST(VarintCodecCorruptTest, HugeCountDoesNotOverRead) {
  // ~4 billion claimed members, 2 actual bytes.
  EXPECT_FALSE(CheckedDecode({0xFF, 0xFF, 0xFF, 0xFF, 0x0F}, 1u << 30).ok());
}

TEST(VarintCodecCorruptTest, IdOutOfRange) {
  std::vector<uint8_t> buf;
  EncodeRRMembers(std::vector<NodeId>{10, 90}, &buf);
  EXPECT_TRUE(CheckedDecode(buf, 91).ok());
  EXPECT_FALSE(CheckedDecode(buf, 90).ok());  // 90 >= max_value
  EXPECT_FALSE(CheckedDecode(buf, 5).ok());
}

TEST(VarintCodecCorruptTest, DeltaOverflowRejected) {
  // First id near UINT32_MAX plus a large delta wraps uint32; the checked
  // decoder must flag it instead of emitting a small bogus id.
  std::vector<uint8_t> buf;
  buf.push_back(0x02);              // count = 2
  buf.push_back(0x0F);              // ctrl: two 4-byte payloads
  for (int i = 0; i < 4; ++i) buf.push_back(0xFF);  // v0 = UINT32_MAX
  for (int i = 0; i < 4; ++i) buf.push_back(0xFF);  // delta wraps
  EXPECT_FALSE(CheckedDecode(buf, 0xFFFFFFFFu).ok());
}

TEST(VarintCodecCorruptTest, RandomBytesNeverCrash) {
  Rng rng(7, 0xbad);
  for (int trial = 0; trial < 2000; ++trial) {
    const uint32_t len = rng.UniformBelow(40);
    std::vector<uint8_t> bytes(len);
    for (auto& b : bytes) b = static_cast<uint8_t>(rng.UniformBelow(256));
    std::vector<NodeId> out;
    const Status s = DecodeRRMembersChecked(bytes, 1000, &out);
    if (s.ok()) {
      // Whatever decoded must satisfy the invariants the engine relies on.
      EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
      for (NodeId v : out) EXPECT_LT(v, 1000u);
    }
  }
}

}  // namespace
}  // namespace opim
