// Out-of-core spill tier of RRCollection: eviction, transparent decode
// fault-in, LRU residency under the sticky target, and the
// no-state-change failure contract.

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "rrset/rr_collection.h"
#include "support/random.h"

namespace opim {
namespace {

constexpr uint32_t kNodes = 50000;

/// Builds a collection whose pool spans several 4096-set chunks: every
/// set has >= 2 members, so nothing is inline-tagged and each chunk
/// carries real encoded bytes.
RRCollection MultiChunkCollection(uint32_t num_sets, uint64_t seed) {
  RRCollection rr(kNodes, RRStoreOptions{.retain_set_costs = false});
  Rng rng(seed);
  std::vector<NodeId> members;
  for (uint32_t i = 0; i < num_sets; ++i) {
    members.clear();
    const uint32_t size = 2 + rng.NextU32() % 12;
    for (uint32_t j = 0; j < size; ++j) {
      members.push_back(rng.NextU32() % kNodes);
    }
    rr.AddSet(members, members.size());
  }
  return rr;
}

std::vector<std::vector<NodeId>> DecodeAll(const RRCollection& rr) {
  std::vector<std::vector<NodeId>> out;
  out.reserve(rr.num_sets());
  for (RRId id = 0; id < rr.num_sets(); ++id) {
    out.push_back(rr.DecodeSet(id));
  }
  return out;
}

TEST(RRSpillTest, SpillWithoutEnableIsFailedPrecondition) {
  RRCollection rr(kNodes);
  auto r = rr.SpillColdChunks(0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(RRSpillTest, EnableSpillIsIdempotentAndRejectsBadDir) {
  RRCollection rr(kNodes);
  ASSERT_TRUE(rr.EnableSpill({.dir = ::testing::TempDir()}).ok());
  EXPECT_TRUE(rr.spill_enabled());
  EXPECT_TRUE(rr.EnableSpill({.dir = ::testing::TempDir()}).ok());

  RRCollection other(kNodes);
  auto st = other.EnableSpill({.dir = "/nonexistent/opim_spill"});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_FALSE(other.spill_enabled());
}

TEST(RRSpillTest, SpillEvictsAndDecodesIdentically) {
  RRCollection rr = MultiChunkCollection(3 * 4096 + 700, /*seed=*/11);
  const std::vector<std::vector<NodeId>> before = DecodeAll(rr);
  const uint64_t resident_before = rr.MemoryUsage();
  const uint64_t pool_bytes = rr.CompressedMemberBytes();
  ASSERT_GT(pool_bytes, 0u);

  ASSERT_TRUE(rr.EnableSpill({.dir = ::testing::TempDir()}).ok());
  auto evicted = rr.SpillColdChunks(/*target_resident_bytes=*/0);
  ASSERT_TRUE(evicted.ok()) << evicted.status().ToString();
  // All three sealed chunks go; the open tail chunk stays resident.
  EXPECT_EQ(evicted.ValueOrDie(), 3u);
  EXPECT_EQ(rr.SpillStats().chunks_spilled, 3u);
  EXPECT_GT(rr.SpilledBytes(), 0u);
  EXPECT_LT(rr.SpilledBytes(), pool_bytes);  // tail chunk not spilled
  EXPECT_LT(rr.MemoryUsage(), resident_before);
  // The logical pool is unchanged — only residency moved.
  EXPECT_EQ(rr.CompressedMemberBytes(), pool_bytes);

  // Decoding faults spilled chunks back transparently, byte-identical.
  const std::vector<std::vector<NodeId>> after = DecodeAll(rr);
  EXPECT_EQ(before, after);
  EXPECT_GT(rr.SpillStats().chunks_faulted, 0u);
}

TEST(RRSpillTest, CoverageSurvivesASpillRoundTrip) {
  RRCollection rr = MultiChunkCollection(2 * 4096 + 100, /*seed=*/23);
  std::vector<NodeId> probes = {0, 17, 4242, kNodes - 1};
  std::vector<uint32_t> counts_before;
  for (NodeId v : probes) counts_before.push_back(rr.CoveringCount(v));

  ASSERT_TRUE(rr.EnableSpill({.dir = ::testing::TempDir()}).ok());
  ASSERT_TRUE(rr.SpillColdChunks(0).ok());
  for (size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(rr.CoveringCount(probes[i]), counts_before[i]);
  }
}

TEST(RRSpillTest, StickyTargetKeepsResidencyBounded) {
  RRCollection rr = MultiChunkCollection(4 * 4096, /*seed=*/37);
  ASSERT_TRUE(rr.EnableSpill({.dir = ::testing::TempDir()}).ok());
  // Room for roughly one chunk: fault-ins must keep evicting colder
  // chunks instead of accumulating the whole pool back on the heap.
  const uint64_t target = rr.CompressedMemberBytes() / 4;
  ASSERT_TRUE(rr.SpillColdChunks(target).ok());
  const uint64_t spilled_floor = rr.SpilledBytes();
  ASSERT_GT(spilled_floor, 0u);

  // Sweep every set (touches every chunk, coldest-to-hottest churn).
  uint64_t checksum = 0;
  for (RRId id = 0; id < rr.num_sets(); ++id) {
    rr.ForEachMember(id, [&](NodeId v) { checksum += v; });
  }
  EXPECT_GT(checksum, 0u);
  // After the sweep, re-evictions must have kept cold bytes on disk:
  // the pool cannot be fully resident again.
  EXPECT_GT(rr.SpilledBytes(), 0u);
  EXPECT_GT(rr.SpillStats().chunks_faulted, 0u);
  EXPECT_GT(rr.SpillStats().chunks_spilled, 3u);  // re-evictions counted
}

TEST(RRSpillTest, InlineOnlyPoolHasNothingToSpill) {
  RRCollection rr(kNodes);
  for (uint32_t i = 0; i < 5000; ++i) {
    const NodeId v = i % kNodes;
    rr.AddSet(std::span<const NodeId>(&v, 1), 1);
  }
  ASSERT_TRUE(rr.EnableSpill({.dir = ::testing::TempDir()}).ok());
  auto evicted = rr.SpillColdChunks(0);
  ASSERT_TRUE(evicted.ok());
  EXPECT_EQ(evicted.ValueOrDie(), 0u);
  EXPECT_EQ(rr.SpilledBytes(), 0u);
}

TEST(RRSpillTest, MoveCarriesTheSpillState) {
  RRCollection rr = MultiChunkCollection(4096 + 50, /*seed=*/5);
  ASSERT_TRUE(rr.EnableSpill({.dir = ::testing::TempDir()}).ok());
  ASSERT_TRUE(rr.SpillColdChunks(0).ok());
  const std::vector<std::vector<NodeId>> before = DecodeAll(rr);

  RRCollection moved = std::move(rr);
  EXPECT_TRUE(moved.spill_enabled());
  EXPECT_EQ(DecodeAll(moved), before);
}

}  // namespace
}  // namespace opim
