#include "graph/transform.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/generators.h"

namespace opim {
namespace {

TEST(ReverseGraphTest, SwapsDirections) {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 0.3);
  b.AddEdge(1, 2, 0.7);
  Graph g = b.Build();
  Graph r = ReverseGraph(g);
  EXPECT_EQ(r.num_edges(), 2u);
  ASSERT_EQ(r.OutNeighbors(1).size(), 1u);
  EXPECT_EQ(r.OutNeighbors(1)[0], 0u);
  EXPECT_DOUBLE_EQ(r.OutProbs(1)[0], 0.3);
  ASSERT_EQ(r.OutNeighbors(2).size(), 1u);
  EXPECT_EQ(r.OutNeighbors(2)[0], 1u);
}

TEST(ReverseGraphTest, DoubleReverseIsIdentity) {
  Graph g = GenerateErdosRenyi(50, 300);
  Graph rr = ReverseGraph(ReverseGraph(g));
  ASSERT_EQ(rr.num_nodes(), g.num_nodes());
  ASSERT_EQ(rr.num_edges(), g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto a = g.OutNeighbors(u);
    auto b = rr.OutNeighbors(u);
    std::vector<NodeId> sa(a.begin(), a.end()), sb(b.begin(), b.end());
    std::sort(sa.begin(), sa.end());
    std::sort(sb.begin(), sb.end());
    EXPECT_EQ(sa, sb) << "node " << u;
  }
}

TEST(InducedSubgraphTest, KeepsOnlyInternalEdges) {
  // 0 -> 1 -> 2 -> 3; keep {1, 2}: one edge survives.
  GraphBuilder b(4);
  for (NodeId v = 0; v + 1 < 4; ++v) b.AddEdge(v, v + 1, 0.5);
  Graph g = b.Build();
  std::vector<NodeId> keep = {1, 2};
  std::vector<NodeId> mapping;
  Graph sub = InducedSubgraph(g, keep, &mapping);
  EXPECT_EQ(sub.num_nodes(), 2u);
  EXPECT_EQ(sub.num_edges(), 1u);
  EXPECT_EQ(mapping[0], kInvalidNode);
  EXPECT_EQ(mapping[1], 0u);
  EXPECT_EQ(mapping[2], 1u);
  EXPECT_EQ(mapping[3], kInvalidNode);
  EXPECT_EQ(sub.OutNeighbors(0)[0], 1u);
  EXPECT_DOUBLE_EQ(sub.OutProbs(0)[0], 0.5);
}

TEST(InducedSubgraphTest, DuplicateNodeIdsDeduplicated) {
  Graph g = GenerateCycle(5);
  std::vector<NodeId> keep = {2, 2, 4, 2};
  Graph sub = InducedSubgraph(g, keep);
  EXPECT_EQ(sub.num_nodes(), 2u);
}

TEST(WccTest, SingleComponentCycle) {
  Graph g = GenerateCycle(8);
  uint32_t count = 0;
  auto comp = WeaklyConnectedComponents(g, &count);
  EXPECT_EQ(count, 1u);
  for (uint32_t c : comp) EXPECT_EQ(c, 0u);
}

TEST(WccTest, DirectionIgnored) {
  // 0 -> 1 and 2 -> 1: weakly one component despite no directed path
  // between 0 and 2.
  GraphBuilder b(3);
  b.AddEdge(0, 1, 0.5);
  b.AddEdge(2, 1, 0.5);
  Graph g = b.Build();
  uint32_t count = 0;
  WeaklyConnectedComponents(g, &count);
  EXPECT_EQ(count, 1u);
}

TEST(WccTest, IsolatedNodesAreOwnComponents) {
  GraphBuilder b(5);
  b.AddEdge(0, 1, 0.5);
  Graph g = b.Build();
  uint32_t count = 0;
  auto comp = WeaklyConnectedComponents(g, &count);
  EXPECT_EQ(count, 4u);  // {0,1}, {2}, {3}, {4}
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_NE(comp[2], comp[3]);
}

TEST(LargestWccTest, ExtractsTheBigPiece) {
  // Component A: path 0-1-2-3 (4 nodes); component B: edge 4-5.
  GraphBuilder b(6);
  for (NodeId v = 0; v < 3; ++v) b.AddEdge(v, v + 1, 0.5);
  b.AddEdge(4, 5, 0.5);
  Graph g = b.Build();
  std::vector<NodeId> mapping;
  Graph wcc = LargestWeaklyConnectedComponent(g, &mapping);
  EXPECT_EQ(wcc.num_nodes(), 4u);
  EXPECT_EQ(wcc.num_edges(), 3u);
  EXPECT_EQ(mapping[4], kInvalidNode);
  EXPECT_EQ(mapping[5], kInvalidNode);
  EXPECT_NE(mapping[0], kInvalidNode);
}

TEST(LargestWccTest, EmptyGraph) {
  GraphBuilder b(0);
  Graph g = b.Build();
  std::vector<NodeId> mapping;
  Graph wcc = LargestWeaklyConnectedComponent(g, &mapping);
  EXPECT_EQ(wcc.num_nodes(), 0u);
  EXPECT_TRUE(mapping.empty());
}

TEST(LargestWccTest, GeneratedGraphsMostlyConnected) {
  // BA graphs are connected by construction; LWCC must be the identity
  // size-wise.
  Graph g = GenerateBarabasiAlbert(500, 3);
  Graph wcc = LargestWeaklyConnectedComponent(g);
  EXPECT_EQ(wcc.num_nodes(), g.num_nodes());
  EXPECT_EQ(wcc.num_edges(), g.num_edges());
}

}  // namespace
}  // namespace opim
