#include "graph/graph_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace opim {
namespace {

TEST(GraphIoTest, ParseSimpleEdgeList) {
  auto r = ParseEdgeList("0 1\n1 2\n2 0\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Graph& g = r.ValueOrDie();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(GraphIoTest, CommentsAndBlankLinesSkipped) {
  auto r = ParseEdgeList("# SNAP header\n\n  # indented comment\n0 1\n\n1 0\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().num_edges(), 2u);
}

TEST(GraphIoTest, ExplicitProbabilitiesParsed) {
  auto r = ParseEdgeList("0 1 0.25\n1 0 0.75\n");
  ASSERT_TRUE(r.ok());
  const Graph& g = r.ValueOrDie();
  EXPECT_DOUBLE_EQ(g.OutProbs(0)[0], 0.25);
  EXPECT_DOUBLE_EQ(g.OutProbs(1)[0], 0.75);
}

TEST(GraphIoTest, SparseIdsCompacted) {
  auto r = ParseEdgeList("1000000 5\n5 99\n");
  ASSERT_TRUE(r.ok());
  const Graph& g = r.ValueOrDie();
  EXPECT_EQ(g.num_nodes(), 3u);  // 1000000, 5, 99 -> 0, 1, 2
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.OutNeighbors(0)[0], 1u);
  EXPECT_EQ(g.OutNeighbors(1)[0], 2u);
}

TEST(GraphIoTest, UndirectedOptionDoublesEdges) {
  EdgeListOptions opt;
  opt.undirected = true;
  auto r = ParseEdgeList("0 1\n", opt);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().num_edges(), 2u);
}

TEST(GraphIoTest, MalformedLineRejectedWithLineNumber) {
  auto r = ParseEdgeList("0 1\nnot an edge\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST(GraphIoTest, OutOfRangeProbabilityRejected) {
  auto r = ParseEdgeList("0 1 1.5\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphIoTest, MissingFileIsIOError) {
  auto r = LoadEdgeList("/nonexistent/opim_missing.txt");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(GraphIoTest, SaveLoadRoundTrip) {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 0.125);
  b.AddEdge(1, 2, 0.5);
  b.AddEdge(2, 0, 0.875);
  Graph g = b.Build();

  std::string path = ::testing::TempDir() + "/opim_roundtrip.txt";
  ASSERT_TRUE(SaveEdgeList(g, path).ok());
  auto r = LoadEdgeList(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Graph& g2 = r.ValueOrDie();
  EXPECT_EQ(g2.num_nodes(), g.num_nodes());
  EXPECT_EQ(g2.num_edges(), g.num_edges());
  // Probabilities survive (first-appearance ordering preserves 0,1,2 here).
  EXPECT_DOUBLE_EQ(g2.OutProbs(0)[0], 0.125);
  EXPECT_DOUBLE_EQ(g2.OutProbs(1)[0], 0.5);
  EXPECT_DOUBLE_EQ(g2.OutProbs(2)[0], 0.875);
  std::remove(path.c_str());
}

TEST(GraphIoTest, WhitespaceVariantsAccepted) {
  auto r = ParseEdgeList("0\t1\n  2   3  \n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().num_edges(), 2u);
}

}  // namespace
}  // namespace opim
