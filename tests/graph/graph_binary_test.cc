#include "graph/graph_binary.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "gen/generators.h"

namespace opim {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(GraphBinaryTest, RoundTripPreservesEverything) {
  Graph g = GenerateBarabasiAlbert(200, 4);
  std::string path = TempPath("opim_bin_roundtrip.bin");
  ASSERT_TRUE(SaveBinaryGraph(g, path).ok());
  auto r = LoadBinaryGraph(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Graph& g2 = r.ValueOrDie();
  ASSERT_EQ(g2.num_nodes(), g.num_nodes());
  ASSERT_EQ(g2.num_edges(), g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto na = g.OutNeighbors(u), nb = g2.OutNeighbors(u);
    auto pa = g.OutProbs(u), pb = g2.OutProbs(u);
    ASSERT_EQ(na.size(), nb.size()) << "node " << u;
    for (size_t i = 0; i < na.size(); ++i) {
      EXPECT_EQ(na[i], nb[i]);
      EXPECT_DOUBLE_EQ(pa[i], pb[i]);
    }
  }
  std::remove(path.c_str());
}

TEST(GraphBinaryTest, EmptyGraphRoundTrips) {
  GraphBuilder b(5);
  Graph g = b.Build();
  std::string path = TempPath("opim_bin_empty.bin");
  ASSERT_TRUE(SaveBinaryGraph(g, path).ok());
  auto r = LoadBinaryGraph(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().num_nodes(), 5u);
  EXPECT_EQ(r.ValueOrDie().num_edges(), 0u);
  std::remove(path.c_str());
}

TEST(GraphBinaryTest, WrongMagicRejected) {
  std::string path = TempPath("opim_bin_magic.bin");
  {
    std::ofstream f(path, std::ios::binary);
    f << "NOTAGRPH and some bytes";
  }
  auto r = LoadBinaryGraph(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(GraphBinaryTest, TruncatedFileRejected) {
  Graph g = GenerateBarabasiAlbert(100, 3);
  std::string full = TempPath("opim_bin_full.bin");
  ASSERT_TRUE(SaveBinaryGraph(g, full).ok());
  // Copy only the first half of the bytes.
  std::ifstream in(full, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  std::string truncated_path = TempPath("opim_bin_trunc.bin");
  {
    std::ofstream out(truncated_path, std::ios::binary);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
  }
  auto r = LoadBinaryGraph(truncated_path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
  std::remove(full.c_str());
  std::remove(truncated_path.c_str());
}

TEST(GraphBinaryTest, MissingFileIsIOError) {
  auto r = LoadBinaryGraph("/nonexistent/opim.bin");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace opim
