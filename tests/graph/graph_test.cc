#include "graph/graph.h"

#include <gtest/gtest.h>

#include "support/random.h"

#include <algorithm>
#include <vector>

namespace opim {
namespace {

Graph MakeTriangle() {
  // 0 -> 1 -> 2 -> 0 with explicit probabilities.
  GraphBuilder b(3);
  b.AddEdge(0, 1, 0.5);
  b.AddEdge(1, 2, 0.25);
  b.AddEdge(2, 0, 1.0);
  return b.Build();
}

TEST(GraphTest, EmptyGraph) {
  GraphBuilder b(0);
  Graph g = b.Build();
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.average_degree(), 0.0);
  EXPECT_EQ(g.MaxInWeightSum(), 0.0);
}

TEST(GraphTest, NodesWithoutEdges) {
  GraphBuilder b(5);
  Graph g = b.Build();
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_TRUE(g.OutNeighbors(v).empty());
    EXPECT_TRUE(g.InNeighbors(v).empty());
    EXPECT_EQ(g.InWeightSum(v), 0.0);
  }
}

TEST(GraphTest, TriangleAdjacency) {
  Graph g = MakeTriangle();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  ASSERT_EQ(g.OutNeighbors(0).size(), 1u);
  EXPECT_EQ(g.OutNeighbors(0)[0], 1u);
  EXPECT_EQ(g.OutProbs(0)[0], 0.5);
  ASSERT_EQ(g.InNeighbors(0).size(), 1u);
  EXPECT_EQ(g.InNeighbors(0)[0], 2u);
  EXPECT_EQ(g.InProbs(0)[0], 1.0);
  EXPECT_EQ(g.OutDegree(1), 1u);
  EXPECT_EQ(g.InDegree(2), 1u);
}

TEST(GraphTest, InWeightSums) {
  Graph g = MakeTriangle();
  EXPECT_DOUBLE_EQ(g.InWeightSum(0), 1.0);
  EXPECT_DOUBLE_EQ(g.InWeightSum(1), 0.5);
  EXPECT_DOUBLE_EQ(g.InWeightSum(2), 0.25);
  EXPECT_DOUBLE_EQ(g.MaxInWeightSum(), 1.0);
}

TEST(GraphTest, ForwardAndReverseAdjacencyConsistent) {
  GraphBuilder b(10);
  Rng rng(5);
  for (int i = 0; i < 40; ++i) {
    b.AddEdge(rng.UniformBelow(10), rng.UniformBelow(10), 0.1);
  }
  Graph g = b.Build();
  // Every forward edge appears exactly once in the reverse direction.
  uint64_t forward = 0, backward = 0;
  for (NodeId u = 0; u < 10; ++u) {
    forward += g.OutDegree(u);
    backward += g.InDegree(u);
  }
  EXPECT_EQ(forward, g.num_edges());
  EXPECT_EQ(backward, g.num_edges());
  for (NodeId u = 0; u < 10; ++u) {
    for (NodeId v : g.OutNeighbors(u)) {
      auto in = g.InNeighbors(v);
      EXPECT_NE(std::find(in.begin(), in.end(), u), in.end())
          << u << "->" << v << " missing from reverse CSR";
    }
  }
}

TEST(GraphTest, WeightedCascadeAssignsInverseInDegree) {
  // Node 2 has in-degree 2 -> each incoming edge gets p = 0.5.
  GraphBuilder b(3);
  b.AddEdge(0, 2);
  b.AddEdge(1, 2);
  Graph g = b.Build(WeightScheme::kWeightedCascade);
  EXPECT_DOUBLE_EQ(g.InProbs(2)[0], 0.5);
  EXPECT_DOUBLE_EQ(g.InProbs(2)[1], 0.5);
  EXPECT_DOUBLE_EQ(g.InWeightSum(2), 1.0);
}

TEST(GraphTest, WeightedCascadeIsAlwaysLtFeasible) {
  GraphBuilder b(50);
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    NodeId u = rng.UniformBelow(50), v = rng.UniformBelow(50);
    if (u != v) b.AddEdge(u, v);
  }
  Graph g = b.Build(WeightScheme::kWeightedCascade);
  EXPECT_LE(g.MaxInWeightSum(), 1.0 + 1e-12);
  for (NodeId v = 0; v < 50; ++v) {
    if (g.InDegree(v) > 0) {
      EXPECT_NEAR(g.InWeightSum(v), 1.0, 1e-9) << "node " << v;
    }
  }
}

TEST(GraphTest, ConstantScheme) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  Graph g = b.Build(WeightScheme::kConstant, 0.07);
  EXPECT_DOUBLE_EQ(g.OutProbs(0)[0], 0.07);
  EXPECT_DOUBLE_EQ(g.OutProbs(1)[0], 0.07);
}

TEST(GraphTest, TrivalencySchemeUsesThreeValues) {
  GraphBuilder b(2);
  for (int i = 0; i < 300; ++i) b.AddEdge(0, 1);
  Graph g = b.Build(WeightScheme::kTrivalency, 0.1, /*seed=*/3);
  for (double p : g.OutProbs(0)) {
    EXPECT_TRUE(p == 0.1 || p == 0.01 || p == 0.001) << p;
  }
}

TEST(GraphTest, UniformRandomSchemeBounded) {
  GraphBuilder b(2);
  for (int i = 0; i < 300; ++i) b.AddEdge(0, 1);
  Graph g = b.Build(WeightScheme::kUniformRandom, 0.2, /*seed=*/3);
  for (double p : g.OutProbs(0)) {
    EXPECT_GE(p, 0.0);
    EXPECT_LT(p, 0.2);
  }
}

TEST(GraphTest, ExplicitProbabilitiesSurviveSchemes) {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 0.42);  // explicit
  b.AddEdge(1, 2);        // scheme-assigned
  Graph g = b.Build(WeightScheme::kConstant, 0.1);
  EXPECT_DOUBLE_EQ(g.OutProbs(0)[0], 0.42);
  EXPECT_DOUBLE_EQ(g.OutProbs(1)[0], 0.1);
}

TEST(GraphTest, UndirectedEdgeAddsBothDirections) {
  GraphBuilder b(2);
  b.AddUndirectedEdge(0, 1);
  Graph g = b.Build();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.OutNeighbors(0)[0], 1u);
  EXPECT_EQ(g.OutNeighbors(1)[0], 0u);
}

TEST(GraphTest, ParallelEdgesKept) {
  GraphBuilder b(2);
  b.AddEdge(0, 1, 0.1);
  b.AddEdge(0, 1, 0.2);
  Graph g = b.Build();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.OutDegree(0), 2u);
}

TEST(GraphStatsTest, ComputesDegreesAndCounts) {
  // star: 0 -> {1,2,3}
  GraphBuilder b(4);
  b.AddEdge(0, 1, 0.5);
  b.AddEdge(0, 2, 0.5);
  b.AddEdge(0, 3, 0.5);
  Graph g = b.Build();
  GraphStats s = ComputeStats(g);
  EXPECT_EQ(s.num_nodes, 4u);
  EXPECT_EQ(s.num_edges, 3u);
  EXPECT_DOUBLE_EQ(s.average_degree, 0.75);
  EXPECT_EQ(s.max_out_degree, 3u);
  EXPECT_EQ(s.max_in_degree, 1u);
  EXPECT_EQ(s.num_sources, 1u);  // node 0
  EXPECT_EQ(s.num_sinks, 3u);    // nodes 1..3
}

}  // namespace
}  // namespace opim
