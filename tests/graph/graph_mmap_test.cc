#include "graph/graph_mmap.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "gen/generators.h"

namespace opim {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Fixed header field offsets of the v1 format (pinned by the on-disk
// contract, so tests may patch bytes directly).
constexpr size_t kVersionOffset = 8;
constexpr size_t kChecksumOffset = 40;
constexpr size_t kHeaderBytes = 64;

/// Recomputes and patches the header checksum after a deliberate payload
/// edit, so the edit reaches the structure validators.
void FixChecksum(std::string* bytes) {
  const uint64_t sum = OpimgChecksum(bytes->data() + kHeaderBytes,
                                     bytes->size() - kHeaderBytes);
  std::memcpy(bytes->data() + kChecksumOffset, &sum, sizeof(sum));
}

void ExpectGraphsEqual(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  const GraphStorageView va = a.storage_view();
  const GraphStorageView vb = b.storage_view();
  auto bytes_eq = [](const auto& sa, const auto& sb) {
    ASSERT_EQ(sa.size(), sb.size());
    EXPECT_EQ(std::memcmp(sa.data(), sb.data(), sa.size_bytes()), 0);
  };
  bytes_eq(va.out_offsets, vb.out_offsets);
  bytes_eq(va.out_neighbors, vb.out_neighbors);
  bytes_eq(va.out_probs, vb.out_probs);
  bytes_eq(va.in_offsets, vb.in_offsets);
  bytes_eq(va.in_neighbors, vb.in_neighbors);
  bytes_eq(va.in_probs, vb.in_probs);
  bytes_eq(va.in_weight_sum, vb.in_weight_sum);
}

TEST(GraphMmapTest, RoundTripPreservesEverything) {
  Graph g = GenerateBarabasiAlbert(300, 4);
  const std::string path = TempPath("opimg_roundtrip.opimg");
  ASSERT_TRUE(SaveOpimg(g, path).ok());
  auto r = LoadOpimg(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Graph& g2 = r.ValueOrDie();
  EXPECT_TRUE(g2.arena_backed());
  ExpectGraphsEqual(g, g2);
  EXPECT_DOUBLE_EQ(g.MaxInWeightSum(), g2.MaxInWeightSum());
  std::remove(path.c_str());
}

TEST(GraphMmapTest, HeapFallbackIsBitIdentical) {
  Graph g = GenerateErdosRenyi(150, 900);
  const std::string path = TempPath("opimg_heap.opimg");
  ASSERT_TRUE(SaveOpimg(g, path).ok());
  auto mapped = LoadOpimg(path);
  OpimgLoadOptions heap_opts;
  heap_opts.force_heap = true;
  auto heap = LoadOpimg(path, heap_opts);
  ASSERT_TRUE(mapped.ok());
  ASSERT_TRUE(heap.ok());
  EXPECT_TRUE(mapped.ValueOrDie().arena_backed());
  EXPECT_FALSE(heap.ValueOrDie().arena_backed());
  ExpectGraphsEqual(mapped.ValueOrDie(), heap.ValueOrDie());
  std::remove(path.c_str());
}

TEST(GraphMmapTest, CopiedGraphSharesTheMapping) {
  Graph g = GenerateBarabasiAlbert(100, 3);
  const std::string path = TempPath("opimg_copy.opimg");
  ASSERT_TRUE(SaveOpimg(g, path).ok());
  auto r = LoadOpimg(path);
  ASSERT_TRUE(r.ok());
  Graph copy = r.ValueOrDie();  // copy ctor: shared pages, not a memcpy
  EXPECT_TRUE(copy.arena_backed());
  ExpectGraphsEqual(g, copy);
  std::remove(path.c_str());
}

TEST(GraphMmapTest, EmptyGraphRoundTrips) {
  GraphBuilder b(7);
  Graph g = b.Build();
  const std::string path = TempPath("opimg_empty.opimg");
  ASSERT_TRUE(SaveOpimg(g, path).ok());
  auto r = LoadOpimg(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.ValueOrDie().num_nodes(), 7u);
  EXPECT_EQ(r.ValueOrDie().num_edges(), 0u);
  std::remove(path.c_str());
}

TEST(GraphMmapTest, MissingFileIsIOError) {
  auto r = LoadOpimg("/nonexistent/opim.opimg");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

class GraphMmapCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("opimg_corrupt.opimg");
    Graph g = GenerateBarabasiAlbert(120, 3);
    ASSERT_TRUE(SaveOpimg(g, path_).ok());
    bytes_ = ReadFile(path_);
    ASSERT_GT(bytes_.size(), kHeaderBytes);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  /// Writes `bytes_` back and asserts the load fails mentioning
  /// `substring` — every corruption class must keep its distinct message.
  void ExpectRejected(const char* substring) {
    WriteFile(path_, bytes_);
    auto r = LoadOpimg(path_);
    ASSERT_FALSE(r.ok()) << "expected rejection: " << substring;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(r.status().ToString().find(substring), std::string::npos)
        << r.status().ToString();
  }

  std::string path_;
  std::string bytes_;
};

TEST_F(GraphMmapCorruptionTest, TruncatedHeaderRejected) {
  bytes_.resize(30);
  ExpectRejected("truncated OPIMG header");
}

TEST_F(GraphMmapCorruptionTest, BadMagicRejected) {
  bytes_[0] = 'X';
  ExpectRejected("not an OPIMG file (bad magic)");
}

TEST_F(GraphMmapCorruptionTest, UnsupportedVersionRejected) {
  bytes_[kVersionOffset] = 9;
  ExpectRejected("unsupported OPIMG version 9");
}

TEST_F(GraphMmapCorruptionTest, TruncatedPayloadRejected) {
  bytes_.resize(bytes_.size() / 2);
  ExpectRejected("truncated payload");
}

TEST_F(GraphMmapCorruptionTest, ChecksumMismatchRejected) {
  bytes_[bytes_.size() - 1] ^= 0x5A;
  ExpectRejected("payload checksum mismatch");
}

TEST_F(GraphMmapCorruptionTest, CorruptOffsetsRejected) {
  // out_offsets[0] is the first payload word; any nonzero value breaks
  // the [0, m] span invariant. Re-checksum so the edit reaches the
  // structure validator instead of the checksum gate.
  bytes_[kHeaderBytes] = 1;
  FixChecksum(&bytes_);
  ExpectRejected("corrupt out offsets");
}

TEST_F(GraphMmapCorruptionTest, ChecksumScanCanBeDisabled) {
  // Flipping a *probability sign bit* corrupts the checksum but also the
  // structure; with both scans off the bytes load as-is. Pins that the
  // options really gate the scans (the BENCH_load "pure mmap" config).
  bytes_[bytes_.size() - 1] ^= 0x80;
  WriteFile(path_, bytes_);
  OpimgLoadOptions trusting;
  trusting.verify_checksum = false;
  trusting.validate_structure = false;
  auto r = LoadOpimg(path_, trusting);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

TEST(GraphMmapFuzzTest, SingleByteMutationsNeverCrash) {
  Graph g = GenerateBarabasiAlbert(60, 3);
  const std::string path = TempPath("opimg_fuzz.opimg");
  ASSERT_TRUE(SaveOpimg(g, path).ok());
  const std::string pristine = ReadFile(path);
  std::mt19937_64 rng(0x0397'2026);
  int rejected = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = pristine;
    // 1-3 byte mutations anywhere in the file, occasionally a truncation.
    const int edits = 1 + static_cast<int>(rng() % 3);
    for (int e = 0; e < edits; ++e) {
      mutated[rng() % mutated.size()] ^=
          static_cast<char>(1 + rng() % 255);
    }
    if (rng() % 8 == 0) mutated.resize(rng() % (mutated.size() + 1));
    WriteFile(path, mutated);
    auto r = LoadOpimg(path);  // must return, never abort or overrun
    if (!r.ok()) {
      ++rejected;
      EXPECT_FALSE(r.status().ToString().empty());
    }
  }
  // Nearly every mutation must be caught (a rare flip only touches
  // alignment padding, which no validator reads).
  EXPECT_GT(rejected, 250);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace opim
