// Robustness sweep for the text and binary loaders: hostile inputs must
// come back as clean Status errors, never crashes or silent corruption.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "graph/graph_binary.h"
#include "graph/graph_io.h"
#include "support/random.h"

namespace opim {
namespace {

class EdgeListRejectionTest : public ::testing::TestWithParam<const char*> {
};

TEST_P(EdgeListRejectionTest, MalformedInputYieldsStatus) {
  auto r = ParseEdgeList(GetParam());
  EXPECT_FALSE(r.ok()) << "input accepted: '" << GetParam() << "'";
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(
    HostileInputs, EdgeListRejectionTest,
    ::testing::Values("garbage\n",            // non-numeric
                      "1\n",                  // one endpoint
                      "1 2 3 oops extra\n0 x\n",  // later line bad
                      "0 1 -0.5\n",           // negative probability
                      "0 1 2.0\n",            // probability > 1
                      "0.5 1\n"));            // fractional id: reads "0",
                                              // then ".5" fails as an id

class EdgeListAcceptanceTest : public ::testing::TestWithParam<const char*> {
};

TEST_P(EdgeListAcceptanceTest, BenignVariantsParse) {
  auto r = ParseEdgeList(GetParam());
  EXPECT_TRUE(r.ok()) << GetParam() << " -> " << r.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(
    BenignInputs, EdgeListAcceptanceTest,
    ::testing::Values("",                       // empty file: empty graph
                      "# only comments\n",      //
                      "0 0\n",                  // self-loop tolerated
                      "0 1 0\n",                // probability exactly 0
                      "0 1 1\n",                // probability exactly 1
                      "\r\n0 1\r\n",            // CRLF
                      "007 08\n",               // leading zeros
                      // "-1" wraps modulo 2^64 per istream unsigned
                      // extraction, then gets interned like any sparse id
                      // — documented, if eccentric, acceptance.
                      "-1 2\n"));

TEST(LoaderRobustnessTest, RandomBinaryGarbageNeverCrashes) {
  Rng rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    std::string path = ::testing::TempDir() + "/opim_fuzz_" +
                       std::to_string(trial) + ".bin";
    {
      std::ofstream f(path, std::ios::binary);
      // Sometimes start with the real magic to exercise deeper paths.
      if (trial % 3 == 0) f << "OPIMGRB1";
      uint32_t len = rng.UniformBelow(256);
      for (uint32_t i = 0; i < len; ++i) {
        char c = static_cast<char>(rng.NextU32() & 0xff);
        f.write(&c, 1);
      }
    }
    auto r = LoadBinaryGraph(path);
    // Any outcome but a crash is fine; empty valid files are conceivable
    // only when counts are consistent, which random bytes essentially
    // never produce — but do not assert, just require a decided Status.
    if (!r.ok()) {
      EXPECT_NE(r.status().code(), StatusCode::kOk);
    }
    std::remove(path.c_str());
  }
}

TEST(LoaderRobustnessTest, HeaderClaimsHugeEdgeCount) {
  // A header demanding 2^40 edges with no payload must fail with IOError,
  // not attempt a 16 TiB allocation... the columnar reader resizes first,
  // so keep the claim large but allocatable and verify the read fails.
  std::string path = ::testing::TempDir() + "/opim_huge_claim.bin";
  {
    std::ofstream f(path, std::ios::binary);
    f << "OPIMGRB1";
    uint32_t n = 10;
    uint64_t m = 50'000'000;  // claims ~1.1 GB of payload, provides none
    f.write(reinterpret_cast<const char*>(&n), sizeof(n));
    f.write(reinterpret_cast<const char*>(&m), sizeof(m));
  }
  auto r = LoadBinaryGraph(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
  std::remove(path.c_str());
}

TEST(LoaderRobustnessTest, BinaryWithCorruptedEndpointRejected) {
  // Hand-craft a valid-shaped file whose edge points outside [0, n).
  std::string path = ::testing::TempDir() + "/opim_bad_endpoint.bin";
  {
    std::ofstream f(path, std::ios::binary);
    f << "OPIMGRB1";
    uint32_t n = 3;
    uint64_t m = 1;
    uint32_t from = 0, to = 99;  // out of range
    double p = 0.5;
    f.write(reinterpret_cast<const char*>(&n), sizeof(n));
    f.write(reinterpret_cast<const char*>(&m), sizeof(m));
    f.write(reinterpret_cast<const char*>(&from), sizeof(from));
    f.write(reinterpret_cast<const char*>(&to), sizeof(to));
    f.write(reinterpret_cast<const char*>(&p), sizeof(p));
  }
  auto r = LoadBinaryGraph(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace opim
