// Robustness sweep for the text and binary loaders: hostile inputs must
// come back as clean Status errors, never crashes or silent corruption.
//
// The edge-list parser is strict (see graph_io.cc ParseLines): every
// non-comment line is exactly "u v" or "u v p" with all-digit ids and a
// finite probability in [0, 1]. The fixture corpus under
// tests/graph/testdata/ pins the same contract for file-based loading.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "graph/graph_binary.h"
#include "graph/graph_io.h"
#include "support/random.h"

namespace opim {
namespace {

class EdgeListRejectionTest : public ::testing::TestWithParam<const char*> {
};

TEST_P(EdgeListRejectionTest, MalformedInputYieldsStatus) {
  auto r = ParseEdgeList(GetParam());
  EXPECT_FALSE(r.ok()) << "input accepted: '" << GetParam() << "'";
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(
    HostileInputs, EdgeListRejectionTest,
    ::testing::Values(
        "garbage\n",                     // non-numeric
        "1\n",                           // one endpoint (truncated line)
        "1 2 3 oops extra\n0 x\n",       // trailing junk on the first line
        "0 1 -0.5\n",                    // negative probability
        "0 1 2.0\n",                     // probability > 1
        "0.5 1\n",                       // fractional id
        "-1 2\n",                        // negative id (no modular wrap)
        "+1 2\n",                        // sign prefix is not a digit
        "1e3 2\n",                       // scientific notation is not an id
        "18446744073709551616 2\n",      // 2^64: uint64 overflow
        "0 1 nan\n",                     // NaN is not a probability
        "0 1 NaN\n",                     //
        "0 1 inf\n",                     // neither is infinity
        "0 1 -inf\n",                    //
        "0 1 0.5x\n",                    // partially-numeric probability
        "0 1 0.5 junk\n",                // trailing junk after valid edge
        "0 1\n2\n",                      // later line truncated
        "1 2a\n"));                      // partially-numeric id

class EdgeListAcceptanceTest : public ::testing::TestWithParam<const char*> {
};

TEST_P(EdgeListAcceptanceTest, BenignVariantsParse) {
  auto r = ParseEdgeList(GetParam());
  EXPECT_TRUE(r.ok()) << GetParam() << " -> " << r.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(
    BenignInputs, EdgeListAcceptanceTest,
    ::testing::Values("",                       // empty file: empty graph
                      "# only comments\n",      //
                      "0 0\n",                  // self-loop tolerated
                      "0 1 0\n",                // probability exactly 0
                      "0 1 1\n",                // probability exactly 1
                      "\r\n0 1\r\n",            // CRLF
                      "0 1 0.25\r\n",           // CRLF after a probability
                      "007 08\n",               // leading zeros
                      "0\t1\t0.25\n",           // tab separation
                      "0 1 1e-3\n",             // scientific probability
                      "0 1 # trailing comment\n"));

TEST(LoaderRobustnessTest, NegativeIdDoesNotWrapIntoAnEdge) {
  // The pre-hardening parser accepted "-1 2" by wrapping -1 modulo 2^64
  // and interning the result as a sparse id — a silently wrong graph.
  // Strict parsing turns that into a decided error.
  auto r = ParseEdgeList("0 1\n-1 2\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().ToString().find("line 2"), std::string::npos)
      << r.status().ToString();
}

#ifdef OPIM_TEST_DATA_DIR
TEST(LoaderRobustnessTest, MalformedFixtureCorpusAllRejected) {
  const std::filesystem::path dir =
      std::filesystem::path(OPIM_TEST_DATA_DIR) / "malformed";
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  size_t fixtures = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    ++fixtures;
    auto r = LoadEdgeList(entry.path().string());
    EXPECT_FALSE(r.ok()) << "fixture accepted: " << entry.path();
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument)
          << entry.path() << " -> " << r.status().ToString();
    }
  }
  EXPECT_GE(fixtures, 8u) << "fixture corpus went missing from " << dir;
}

TEST(LoaderRobustnessTest, BenignFixtureCorpusAllParse) {
  const std::filesystem::path dir =
      std::filesystem::path(OPIM_TEST_DATA_DIR) / "benign";
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  size_t fixtures = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    ++fixtures;
    auto r = LoadEdgeList(entry.path().string());
    EXPECT_TRUE(r.ok()) << entry.path() << " -> " << r.status().ToString();
    if (r.ok()) {
      EXPECT_GT(r.ValueOrDie().num_nodes(), 0u) << entry.path();
    }
  }
  EXPECT_GE(fixtures, 1u);
}
#endif  // OPIM_TEST_DATA_DIR

TEST(LoaderRobustnessTest, RandomBinaryGarbageNeverCrashes) {
  Rng rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    std::string path = ::testing::TempDir() + "/opim_fuzz_" +
                       std::to_string(trial) + ".bin";
    {
      std::ofstream f(path, std::ios::binary);
      // Sometimes start with the real magic to exercise deeper paths.
      if (trial % 3 == 0) f << "OPIMGRB1";
      uint32_t len = rng.UniformBelow(256);
      for (uint32_t i = 0; i < len; ++i) {
        char c = static_cast<char>(rng.NextU32() & 0xff);
        f.write(&c, 1);
      }
    }
    auto r = LoadBinaryGraph(path);
    // Any outcome but a crash is fine; empty valid files are conceivable
    // only when counts are consistent, which random bytes essentially
    // never produce — but do not assert, just require a decided Status.
    if (!r.ok()) {
      EXPECT_NE(r.status().code(), StatusCode::kOk);
    }
    std::remove(path.c_str());
  }
}

TEST(LoaderRobustnessTest, HeaderClaimsHugeEdgeCount) {
  // A header demanding 2^40 edges with no payload must fail with IOError,
  // not attempt a 16 TiB allocation... the columnar reader resizes first,
  // so keep the claim large but allocatable and verify the read fails.
  std::string path = ::testing::TempDir() + "/opim_huge_claim.bin";
  {
    std::ofstream f(path, std::ios::binary);
    f << "OPIMGRB1";
    uint32_t n = 10;
    uint64_t m = 50'000'000;  // claims ~1.1 GB of payload, provides none
    f.write(reinterpret_cast<const char*>(&n), sizeof(n));
    f.write(reinterpret_cast<const char*>(&m), sizeof(m));
  }
  auto r = LoadBinaryGraph(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
  std::remove(path.c_str());
}

TEST(LoaderRobustnessTest, BinaryWithCorruptedEndpointRejected) {
  // Hand-craft a valid-shaped file whose edge points outside [0, n).
  std::string path = ::testing::TempDir() + "/opim_bad_endpoint.bin";
  {
    std::ofstream f(path, std::ios::binary);
    f << "OPIMGRB1";
    uint32_t n = 3;
    uint64_t m = 1;
    uint32_t from = 0, to = 99;  // out of range
    double p = 0.5;
    f.write(reinterpret_cast<const char*>(&n), sizeof(n));
    f.write(reinterpret_cast<const char*>(&m), sizeof(m));
    f.write(reinterpret_cast<const char*>(&from), sizeof(from));
    f.write(reinterpret_cast<const char*>(&to), sizeof(to));
    f.write(reinterpret_cast<const char*>(&p), sizeof(p));
  }
  auto r = LoadBinaryGraph(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace opim
