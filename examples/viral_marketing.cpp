// Viral-marketing budget planning — the application from the paper's
// introduction. A marketer must choose how many seed users k to pay for;
// this example sweeps k, runs OPIM-C for each budget, and reports the
// expected cascade size and its marginal value, exposing the
// diminishing-returns curve that submodularity promises.
//
//   ./build/examples/viral_marketing [--scale=14] [--eps=0.1] [--model=IC]

#include <cstdio>
#include <string>

#include "core/opim_c.h"
#include "diffusion/cascade.h"
#include "gen/generators.h"
#include "harness/flags.h"

int main(int argc, char** argv) {
  opim::Flags flags(argc, argv);
  const uint32_t scale =
      static_cast<uint32_t>(flags.GetUint("scale", 14));
  const double eps = flags.GetDouble("eps", 0.1);
  const std::string model_name = flags.GetString("model", "IC");
  const opim::DiffusionModel model =
      model_name == "LT" ? opim::DiffusionModel::kLinearThreshold
                         : opim::DiffusionModel::kIndependentCascade;

  // A follow-graph-like network: heavy-tailed in-degrees.
  opim::Graph g =
      opim::GenerateRmat(scale, /*m=*/16ULL * (1ULL << scale));
  std::printf("campaign network: %u users, %llu follow edges, model=%s\n",
              g.num_nodes(), static_cast<unsigned long long>(g.num_edges()),
              opim::DiffusionModelName(model));

  opim::SpreadEstimator estimator(g, model);
  std::printf("%6s  %12s  %16s  %12s\n", "budget", "spread", "marginal/seed",
              "rr_sets");

  double previous_spread = 0.0;
  uint32_t previous_k = 0;
  for (uint32_t k : {1u, 2u, 5u, 10u, 20u, 50u, 100u}) {
    opim::OpimCResult result =
        opim::RunOpimC(g, model, k, eps, /*delta=*/1.0 / g.num_nodes());
    double spread = estimator.Estimate(result.seeds, 5000);
    double marginal =
        (spread - previous_spread) / static_cast<double>(k - previous_k);
    std::printf("%6u  %12.1f  %16.2f  %12llu\n", k, spread, marginal,
                static_cast<unsigned long long>(result.num_rr_sets));
    previous_spread = spread;
    previous_k = k;
  }
  std::printf("\nEach extra seed buys less reach — pick the budget where\n"
              "the marginal value crosses your per-seed cost.\n");
  return 0;
}
