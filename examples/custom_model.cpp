// Extending the library with a custom diffusion model.
//
// The triggering-model abstraction (rrset/triggering.h) is the extension
// point: implement TriggeringDistribution and you get forward simulation
// AND reverse-reachable sampling — hence the whole OPIM bound machinery —
// for free. This example defines a "majority-of-two" model (each node is
// triggered by a random pair of its in-neighbors: IC-like but capped at
// fan-in 2), runs the RR machinery on it, and certifies a seed set with
// the paper's instance-specific bounds.
//
//   ./build/examples/custom_model [--n=8192] [--k=20]

#include <cstdio>
#include <memory>

#include "bounds/bounds.h"
#include "gen/generators.h"
#include "harness/flags.h"
#include "rrset/triggering.h"
#include "select/greedy.h"

namespace {

/// Triggering set = up to two distinct in-neighbors drawn uniformly.
/// (Any distribution over in-neighbor subsets defines a valid triggering
/// model; Kempe et al.'s theory — and therefore OPIM's bounds — apply.)
class PairTriggering final : public opim::TriggeringDistribution {
 public:
  explicit PairTriggering(const opim::Graph& g) : graph_(g) {}

  uint64_t SampleTriggeringSet(opim::NodeId v, opim::Rng& rng,
                               std::vector<opim::NodeId>* out) const override {
    auto in = graph_.InNeighbors(v);
    if (!in.empty()) {
      uint32_t first = rng.UniformBelow(static_cast<uint32_t>(in.size()));
      out->push_back(in[first]);
      if (in.size() > 1) {
        uint32_t second =
            rng.UniformBelow(static_cast<uint32_t>(in.size()) - 1);
        if (second >= first) ++second;
        out->push_back(in[second]);
      }
    }
    return in.size();
  }

  const opim::Graph& graph() const override { return graph_; }

 private:
  const opim::Graph& graph_;
};

}  // namespace

int main(int argc, char** argv) {
  opim::Flags flags(argc, argv);
  const uint32_t n = static_cast<uint32_t>(flags.GetUint("n", 8192));
  const uint32_t k = static_cast<uint32_t>(flags.GetUint("k", 20));
  const double delta = 1.0 / n;

  opim::Graph g = opim::GenerateBarabasiAlbert(n, 6);
  auto dist = std::make_shared<PairTriggering>(g);

  // Stream RR sets under the custom model into nominator/judge pools and
  // certify a seed set — the two-pool recipe of the paper's §4, done by
  // hand to show the pieces.
  opim::TriggeringRRSampler sampler(dist);
  opim::Rng rng(1);
  opim::RRCollection r1(n), r2(n);
  std::vector<opim::NodeId> scratch;
  const uint64_t per_pool = flags.GetUint("rr", 30000);
  for (uint64_t i = 0; i < per_pool; ++i) {
    uint64_t cost = sampler.SampleInto(rng, &scratch);
    r1.AddSet(scratch, cost);
  }
  for (uint64_t i = 0; i < per_pool; ++i) {
    uint64_t cost = sampler.SampleInto(rng, &scratch);
    r2.AddSet(scratch, cost);
  }

  opim::GreedyResult greedy = opim::SelectGreedy(r1, k, /*with_trace=*/true);
  const double lower =
      opim::SigmaLower(r2.CoverageOf(greedy.seeds), r2.num_sets(), n,
                       delta / 2);
  const double upper = opim::SigmaUpper(
      opim::BoundKind::kImproved, greedy, r1.num_sets(), n, delta / 2);
  const double alpha = opim::ApproxRatio(lower, upper);

  std::printf("custom 'majority-of-two' triggering model on n=%u, k=%u\n",
              n, k);
  std::printf("sigma lower bound  %.1f\n", lower);
  std::printf("sigma(OPT) upper   %.1f\n", upper);
  std::printf("certified alpha    %.4f  (w.p. >= 1 - 1/n)\n", alpha);

  // Cross-check with forward simulation under the same model.
  uint64_t total = 0;
  const int runs = 20000;
  opim::Rng sim_rng(2);
  for (int i = 0; i < runs; ++i) {
    total += opim::SimulateTriggeringCascade(*dist, greedy.seeds, sim_rng);
  }
  std::printf("forward-simulated spread of the chosen seeds: %.1f\n",
              static_cast<double>(total) / runs);
  std::printf("(must be >= the certified lower bound %.1f)\n", lower);
  return 0;
}
