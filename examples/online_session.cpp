// Online-processing session: the paper's headline interaction model (§1).
//
// A user submits an influence-maximization "query", watches the reported
// approximation guarantee improve as the algorithm streams RR sets, and
// stops when satisfied — exactly like online aggregation in a database.
// This example simulates that loop: it advances the OnlineMaximizer in
// rounds, prints the three bound variants' guarantees after each round,
// and stops once OPIM⁺ clears a target guarantee.
//
//   ./build/examples/online_session [--k=50] [--target=0.8] [--batch=2000]

#include <cstdio>

#include "core/online_maximizer.h"
#include "gen/generators.h"
#include "harness/flags.h"

int main(int argc, char** argv) {
  opim::Flags flags(argc, argv);
  const uint32_t n = static_cast<uint32_t>(flags.GetUint("n", 16384));
  const uint32_t k = static_cast<uint32_t>(flags.GetUint("k", 50));
  const double target = flags.GetDouble("target", 0.8);
  const uint64_t batch = flags.GetUint("batch", 2000);
  const uint32_t max_rounds =
      static_cast<uint32_t>(flags.GetUint("rounds", 64));

  opim::Graph g = opim::GenerateBarabasiAlbert(n, 12);
  opim::OnlineMaximizer maximizer(
      g, opim::DiffusionModel::kLinearThreshold, k, /*delta=*/1.0 / n);

  std::printf("online session: n=%u k=%u target alpha=%.2f\n", n, k, target);
  std::printf("%10s  %8s  %8s  %8s\n", "rr_sets", "OPIM0", "OPIM+", "OPIM'");

  for (uint32_t round = 1; round <= max_rounds; ++round) {
    // "Resume": give the algorithm another slice of processing time.
    maximizer.Advance(batch);
    // "Pause": ask for the current solution and its quality assurance.
    opim::OnlineSnapshotAll snap = maximizer.QueryAll();
    std::printf("%10llu  %8.4f  %8.4f  %8.4f\n",
                static_cast<unsigned long long>(snap.theta_total),
                snap.alpha_basic, snap.alpha_improved, snap.alpha_leskovec);
    if (snap.alpha_improved >= target) {
      std::printf("target reached; accepting seed set of size %zu "
                  "(sigma lower bound %.1f)\n",
                  snap.seeds.size(), snap.sigma_lower);
      return 0;
    }
  }
  std::printf("stopped after %u rounds without reaching the target; the\n"
              "last seed set is still usable with its reported guarantee.\n",
              max_rounds);
  return 0;
}
