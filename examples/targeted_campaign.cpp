// Targeted campaign: node-weighted influence maximization.
//
// Real campaigns do not value every user equally — only conversions in
// the target demographic pay. Weighting each node and maximizing the
// weighted spread σ_w(S) = Σ_v w_v·Pr[S activates v] is the standard
// generalization, supported end-to-end by this library via
// importance-weighted RR-set roots. This example builds a network where
// 10% of users form the (clustered) target segment, then compares the
// seeds chosen by unweighted and weighted OPIM-C under both objectives.
//
//   ./build/examples/targeted_campaign [--n=8192] [--k=20]

#include <cstdio>
#include <vector>

#include "core/opim_c.h"
#include "diffusion/cascade.h"
#include "gen/generators.h"
#include "harness/flags.h"
#include "support/random.h"

int main(int argc, char** argv) {
  opim::Flags flags(argc, argv);
  const uint32_t n = static_cast<uint32_t>(flags.GetUint("n", 8192));
  const uint32_t k = static_cast<uint32_t>(flags.GetUint("k", 20));
  const double eps = flags.GetDouble("eps", 0.15);
  const auto model = opim::DiffusionModel::kIndependentCascade;

  opim::Graph g = opim::GenerateBarabasiAlbert(n, 8);

  // Target segment: a contiguous id range (BA ids correlate with arrival
  // time, so this clusters around a mix of early hubs and late leaves),
  // worth 10x a regular user.
  std::vector<double> weights(n, 1.0);
  const uint32_t segment_begin = n / 2, segment_end = n / 2 + n / 10;
  for (uint32_t v = segment_begin; v < segment_end; ++v) weights[v] = 10.0;

  opim::OpimCOptions plain_opts, targeted_opts;
  targeted_opts.node_weights = weights;
  opim::OpimCResult plain =
      RunOpimC(g, model, k, eps, 1.0 / n, plain_opts);
  opim::OpimCResult targeted =
      RunOpimC(g, model, k, eps, 1.0 / n, targeted_opts);

  opim::SpreadEstimator est(g, model);
  const uint64_t mc = 20000;
  double plain_total = est.Estimate(plain.seeds, mc);
  double plain_value = est.EstimateWeighted(plain.seeds, weights, mc);
  double targeted_total = est.Estimate(targeted.seeds, mc);
  double targeted_value = est.EstimateWeighted(targeted.seeds, weights, mc);

  std::printf("network: n=%u, m=%llu; target segment [%u, %u) at weight "
              "10x\n\n",
              n, static_cast<unsigned long long>(g.num_edges()),
              segment_begin, segment_end);
  std::printf("%-22s  %14s  %16s\n", "optimizer", "users reached",
              "campaign value");
  std::printf("%-22s  %14.1f  %16.1f\n", "unweighted OPIM-C", plain_total,
              plain_value);
  std::printf("%-22s  %14.1f  %16.1f\n", "weighted OPIM-C", targeted_total,
              targeted_value);
  std::printf("\nweighted seeds certify alpha=%.3f on the *weighted* "
              "objective (w.p. 1 - 1/n);\nexpect them to trade raw reach "
              "for value inside the segment.\n",
              targeted.alpha);
  return 0;
}
