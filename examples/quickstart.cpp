// Quickstart: pick an influential seed set on a synthetic social network
// with OPIM-C, the paper's conventional influence-maximization algorithm,
// and sanity-check the result with Monte-Carlo simulation.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [--n=4096] [--k=10] [--eps=0.1]

#include <cstdio>

#include "core/opim_c.h"
#include "diffusion/cascade.h"
#include "gen/generators.h"
#include "harness/flags.h"

int main(int argc, char** argv) {
  opim::Flags flags(argc, argv);
  const uint32_t n = static_cast<uint32_t>(flags.GetUint("n", 4096));
  const uint32_t k = static_cast<uint32_t>(flags.GetUint("k", 10));
  const double eps = flags.GetDouble("eps", 0.1);

  // 1. Make a scale-free social network with weighted-cascade edge
  //    probabilities p(u, v) = 1 / in-degree(v).
  opim::Graph g = opim::GenerateBarabasiAlbert(n, /*edges_per_node=*/8);
  std::printf("graph: %u nodes, %llu edges\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));

  // 2. Run OPIM-C: a (1 - 1/e - eps)-approximation w.p. 1 - 1/n.
  opim::OpimCResult result = opim::RunOpimC(
      g, opim::DiffusionModel::kIndependentCascade, k, eps,
      /*delta=*/1.0 / n);
  std::printf("OPIM-C: %u iterations, %llu RR sets, guarantee alpha=%.3f\n",
              result.iterations,
              static_cast<unsigned long long>(result.num_rr_sets),
              result.alpha);
  std::printf("seeds:");
  for (opim::NodeId v : result.seeds) std::printf(" %u", v);
  std::printf("\n");

  // 3. Verify with forward Monte-Carlo simulation.
  opim::SpreadEstimator estimator(g,
                                  opim::DiffusionModel::kIndependentCascade);
  double spread = estimator.Estimate(result.seeds, /*num_samples=*/10000);
  std::printf("estimated expected spread: %.1f nodes (%.2f%% of graph)\n",
              spread, 100.0 * spread / n);
  return 0;
}
