// Diffusion-model sensitivity: how much do the chosen seeds depend on the
// model (IC vs LT)? Runs OPIM-C under both models on the same network,
// reports seed overlap, and cross-evaluates each seed set under the other
// model — a practical robustness check before committing to a campaign.
//
//   ./build/examples/model_comparison [--n=16384] [--k=25] [--eps=0.1]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/opim_c.h"
#include "diffusion/cascade.h"
#include "gen/generators.h"
#include "harness/flags.h"

namespace {

size_t OverlapCount(std::vector<opim::NodeId> a,
                    std::vector<opim::NodeId> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::vector<opim::NodeId> common;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(common));
  return common.size();
}

}  // namespace

int main(int argc, char** argv) {
  opim::Flags flags(argc, argv);
  const uint32_t n = static_cast<uint32_t>(flags.GetUint("n", 16384));
  const uint32_t k = static_cast<uint32_t>(flags.GetUint("k", 25));
  const double eps = flags.GetDouble("eps", 0.1);

  opim::Graph g = opim::GenerateBarabasiAlbert(n, 10);
  const double delta = 1.0 / n;

  using opim::DiffusionModel;
  opim::OpimCResult ic =
      RunOpimC(g, DiffusionModel::kIndependentCascade, k, eps, delta);
  opim::OpimCResult lt =
      RunOpimC(g, DiffusionModel::kLinearThreshold, k, eps, delta);

  opim::SpreadEstimator est_ic(g, DiffusionModel::kIndependentCascade);
  opim::SpreadEstimator est_lt(g, DiffusionModel::kLinearThreshold);
  const uint64_t mc = 5000;

  std::printf("graph: %u nodes, %llu edges, k=%u, eps=%.2f\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()), k, eps);
  std::printf("seed overlap between IC and LT choices: %zu / %u\n",
              OverlapCount(ic.seeds, lt.seeds), k);
  std::printf("%-22s  %10s  %10s\n", "seed set \\ evaluated under", "IC",
              "LT");
  std::printf("%-22s  %10.1f  %10.1f\n", "IC-optimized seeds",
              est_ic.Estimate(ic.seeds, mc), est_lt.Estimate(ic.seeds, mc));
  std::printf("%-22s  %10.1f  %10.1f\n", "LT-optimized seeds",
              est_ic.Estimate(lt.seeds, mc), est_lt.Estimate(lt.seeds, mc));
  std::printf("\nIf the off-diagonal spreads are close to the diagonal, the\n"
              "campaign is robust to diffusion-model misspecification.\n");
  return 0;
}
